package qoc

import (
	"math"
	"math/rand"

	"epoc/internal/faultclock"
	"epoc/internal/linalg"
	"epoc/internal/obs"
	"epoc/internal/opt"
	"epoc/internal/trace"
)

// CRABConfig tunes the Chopped Random Basis optimizer (Caneva,
// Calarco et al. 2011), the second QOC algorithm the paper's
// background discusses. Controls are expanded in a small randomized
// Fourier basis and the coefficients are optimized derivative-free,
// which suits experiments where gradients are unavailable.
type CRABConfig struct {
	Harmonics int     // Fourier components per control (default 4)
	MaxIter   int     // Nelder-Mead iteration budget (default 2000)
	Target    float64 // stop once fidelity reaches this (default 0.999)
	Seed      int64   // randomized-frequency seed (default 1)
	Restarts  int     // random restarts (default 2)

	// Gate, when non-nil, is checked once per restart
	// (faultclock.SiteCRABRestart). CRAB's inner Nelder-Mead loop is
	// derivative-free and cheap per step, so restart granularity keeps
	// the check off the hot path; Result.Err classifies early exits
	// the same way GRAPE's does.
	Gate *faultclock.Gate

	// BudgetIters, when > 0 and below MaxIter, caps the Nelder-Mead
	// iterations of every restart; a run that then misses the target
	// returns Result.Err = faultclock.ErrBudget with its best-so-far
	// coefficients.
	BudgetIters int

	// Obs, when non-nil, records per-run convergence metrics under
	// "qoc/crab/*" (runs, restarts used, iteration and final-fidelity
	// distributions, early-stop reason counters).
	Obs *obs.Recorder

	// Span, when non-nil, is the trace span of the pulse being
	// optimized; the duration search hangs one "qoc/duration_probe"
	// child span off it per probe (see GRAPEConfig.Span).
	Span *trace.Span
}

func (c *CRABConfig) defaults() {
	if c.Harmonics == 0 {
		c.Harmonics = 4
	}
	if c.MaxIter == 0 {
		c.MaxIter = 2000
	}
	if c.Target == 0 {
		c.Target = 0.999
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Restarts == 0 {
		c.Restarts = 2
	}
}

// CRAB optimizes the target unitary over the given number of slots
// using the chopped-random-basis ansatz
//
//	u_j(t) = Σ_k [a_{jk}·sin(ω_{jk}·t) + b_{jk}·cos(ω_{jk}·t)]
//
// with randomized frequencies ω around the principal harmonics,
// clipped to the hardware amplitude bounds.
func CRAB(m *Model, target *linalg.Matrix, slots int, cfg CRABConfig) Result {
	cfg.defaults()
	if target.Rows != m.Dim() {
		panic("qoc: target dimension does not match model")
	}
	nc := len(m.Controls)
	T := float64(slots) * m.Dt

	maxIter := cfg.MaxIter
	budgeted := cfg.BudgetIters > 0 && cfg.BudgetIters < maxIter
	if budgeted {
		maxIter = cfg.BudgetIters
	}
	bestRes := Result{Fidelity: -1, Slots: slots, Duration: T}
	restartsUsed := 0
	var stop error
	for restart := 0; restart < cfg.Restarts; restart++ {
		if err := cfg.Gate.Check(faultclock.SiteCRABRestart); err != nil {
			stop = err
			break
		}
		restartsUsed++
		rng := rand.New(rand.NewSource(cfg.Seed + int64(restart)*7919))
		// Randomized frequencies around the principal harmonics.
		freqs := make([][]float64, nc)
		for j := range freqs {
			freqs[j] = make([]float64, cfg.Harmonics)
			for k := range freqs[j] {
				base := 2 * math.Pi * float64(k+1) / T
				freqs[j][k] = base * (1 + 0.4*(rng.Float64()-0.5))
			}
		}

		build := func(coeffs []float64) [][]float64 {
			amps := make([][]float64, slots)
			for s := 0; s < slots; s++ {
				amps[s] = make([]float64, nc)
				t := (float64(s) + 0.5) * m.Dt
				idx := 0
				for j := 0; j < nc; j++ {
					var v float64
					for k := 0; k < cfg.Harmonics; k++ {
						v += coeffs[idx]*math.Sin(freqs[j][k]*t) + coeffs[idx+1]*math.Cos(freqs[j][k]*t)
						idx += 2
					}
					// Clip to the hardware bound.
					if v > m.MaxAmp[j] {
						v = m.MaxAmp[j]
					} else if v < -m.MaxAmp[j] {
						v = -m.MaxAmp[j]
					}
					amps[s][j] = v
				}
			}
			return amps
		}

		objective := func(coeffs []float64) float64 {
			u := m.Propagate(build(coeffs))
			return 1 - Fidelity(u, target)
		}

		np := nc * cfg.Harmonics * 2
		x0 := make([]float64, np)
		idx := 0
		for j := 0; j < nc; j++ {
			for k := 0; k < cfg.Harmonics; k++ {
				x0[idx] = (rng.Float64()*2 - 1) * m.MaxAmp[j] * 0.4
				x0[idx+1] = (rng.Float64()*2 - 1) * m.MaxAmp[j] * 0.4
				idx += 2
			}
		}
		res := opt.NelderMead(objective, x0, opt.NelderMeadConfig{
			MaxIter: maxIter,
			Tol:     1e-12,
			Step:    0.05,
		})
		fid := 1 - res.F
		if fid > bestRes.Fidelity {
			bestRes.Fidelity = fid
			bestRes.Amps = build(res.X)
			bestRes.Iterations = res.Iterations
		}
		if bestRes.Fidelity >= cfg.Target {
			break
		}
	}
	if stop == nil && budgeted && bestRes.Fidelity < cfg.Target {
		stop = faultclock.ErrBudget
	}
	bestRes.Err = stop
	if r := cfg.Obs; r != nil {
		reason := "max_iter"
		switch {
		case bestRes.Fidelity >= cfg.Target:
			reason = "target"
		case faultclock.IsBudget(stop):
			reason = "budget"
		case stop != nil:
			reason = "canceled"
		}
		r.Add("qoc/crab/runs", 1)
		r.Add("qoc/crab/stop/"+reason, 1)
		r.Observe("qoc/crab/restarts", float64(restartsUsed))
		r.Observe("qoc/crab/iterations", float64(bestRes.Iterations))
		r.Observe("qoc/crab/final_fidelity", bestRes.Fidelity)
		r.Eventf("qoc/crab", "slots=%d restarts=%d iters=%d fid=%.6f stop=%s",
			slots, restartsUsed, bestRes.Iterations, bestRes.Fidelity, reason)
	}
	return bestRes
}
