package qoc

import (
	"math"
	"math/rand"
	"testing"

	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func TestModelStructure(t *testing.T) {
	m := StandardModel(3, ModelOptions{})
	// 2 drives per qubit + 2 chain couplers.
	if len(m.Controls) != 8 {
		t.Fatalf("control count = %d", len(m.Controls))
	}
	if m.Dim() != 8 {
		t.Fatalf("dim = %d", m.Dim())
	}
	for i, c := range m.Controls {
		if !c.IsHermitian(1e-12) {
			t.Fatalf("control %s not Hermitian", m.Names[i])
		}
	}
	if !m.Drift.IsHermitian(1e-12) {
		t.Fatal("drift not Hermitian")
	}
}

func TestModelDetunings(t *testing.T) {
	m := StandardModel(2, ModelOptions{Detuning: 0.1})
	if m.Drift.FrobeniusNorm() == 0 {
		t.Fatal("detuned drift is zero")
	}
	// Drift must be diagonal (Z terms only).
	for i := 0; i < m.Dim(); i++ {
		for j := 0; j < m.Dim(); j++ {
			if i != j && m.Drift.At(i, j) != 0 {
				t.Fatal("drift has off-diagonal terms")
			}
		}
	}
}

func TestModelInvalidCoupling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StandardModel(2, ModelOptions{Couplings: [][2]int{{0, 5}}})
}

func TestPropagateZeroAmpsIsDriftOnly(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	amps := [][]float64{make([]float64, len(m.Controls))}
	u := m.Propagate(amps)
	if linalg.PhaseDistance(u, linalg.Identity(2)) > 1e-9 {
		t.Fatal("zero drive on zero drift should be identity")
	}
}

func TestPropagateConstantXDrive(t *testing.T) {
	m := StandardModel(1, ModelOptions{Dt: 1})
	// Constant X drive of amplitude a for s slots → RX(a·s).
	a := 0.1
	slots := 10
	amps := make([][]float64, slots)
	for k := range amps {
		amps[k] = []float64{a, 0}
	}
	u := m.Propagate(amps)
	want := gate.New(gate.RX, a*float64(slots)).Matrix()
	if d := linalg.PhaseDistance(u, want); d > 1e-6 {
		t.Fatalf("constant drive mismatch: %v", d)
	}
}

func TestFidelityBounds(t *testing.T) {
	id := linalg.Identity(4)
	if f := Fidelity(id, id); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity %v", f)
	}
	x := gate.New(gate.X).Matrix()
	z := gate.New(gate.Z).Matrix()
	if f := Fidelity(x, z); f > 1e-12 {
		t.Fatalf("orthogonal fidelity %v", f)
	}
}

func TestGRAPEXGate(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := GRAPE(m, gate.New(gate.X).Matrix(), 12, GRAPEConfig{MaxIter: 400})
	if res.Fidelity < 0.999 {
		t.Fatalf("X pulse fidelity %v after %d iters", res.Fidelity, res.Iterations)
	}
	// Propagating the returned amplitudes must reproduce the fidelity.
	u := m.Propagate(res.Amps)
	if f := Fidelity(u, gate.New(gate.X).Matrix()); math.Abs(f-res.Fidelity) > 1e-9 {
		t.Fatalf("reported %v, propagated %v", res.Fidelity, f)
	}
	// Amplitudes must respect the hardware bounds.
	for _, slot := range res.Amps {
		for j, a := range slot {
			if math.Abs(a) > m.MaxAmp[j]+1e-12 {
				t.Fatalf("amplitude %v exceeds bound %v", a, m.MaxAmp[j])
			}
		}
	}
}

func TestGRAPEHGate(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := GRAPE(m, gate.New(gate.H).Matrix(), 12, GRAPEConfig{MaxIter: 400})
	if res.Fidelity < 0.999 {
		t.Fatalf("H pulse fidelity %v", res.Fidelity)
	}
}

func TestGRAPETooShortPulseFails(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	// One 2ns slot at max 0.188 rad/ns cannot realize a π rotation.
	res := GRAPE(m, gate.New(gate.X).Matrix(), 1, GRAPEConfig{MaxIter: 150})
	if res.Fidelity > 0.99 {
		t.Fatalf("impossible pulse claims fidelity %v", res.Fidelity)
	}
}

func TestGRAPECNOT(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	res := GRAPE(m, gate.New(gate.CX).Matrix(), 60, GRAPEConfig{MaxIter: 600})
	if res.Fidelity < 0.995 {
		t.Fatalf("CNOT pulse fidelity %v after %d iters", res.Fidelity, res.Iterations)
	}
	u := m.Propagate(res.Amps)
	if f := Fidelity(u, gate.New(gate.CX).Matrix()); math.Abs(f-res.Fidelity) > 1e-9 {
		t.Fatal("propagated fidelity mismatch")
	}
}

func TestGRAPERandom2QUnitary(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	rng := newRand(7)
	target := linalg.RandomUnitary(4, rng)
	res := GRAPE(m, target, 80, GRAPEConfig{MaxIter: 600, Seed: 3})
	if res.Fidelity < 0.99 {
		t.Fatalf("random SU(4) pulse fidelity %v", res.Fidelity)
	}
}

func TestDurationSearchFindsShorterPulse(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	x := gate.New(gate.X).Matrix()
	res := DurationSearch(m, x, 1, 24, 2, GRAPEConfig{MaxIter: 300})
	if res.Fidelity < 0.999 {
		t.Fatalf("duration search fidelity %v", res.Fidelity)
	}
	if res.Slots >= 24 {
		t.Fatalf("duration search did not shorten: %d slots", res.Slots)
	}
	if res.Duration != float64(res.Slots)*m.Dt {
		t.Fatal("duration/slots inconsistent")
	}
	// A 1-slot X pulse is impossible, so the minimum must exceed 1.
	if res.Slots < 2 {
		t.Fatalf("suspiciously short X pulse: %d slots", res.Slots)
	}
}

func TestDurationSearchImpossibleTarget(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := DurationSearch(m, gate.New(gate.X).Matrix(), 1, 1, 1, GRAPEConfig{MaxIter: 100})
	if res.Fidelity >= 0.999 {
		t.Fatal("impossible search should report the failed fidelity")
	}
	if res.Slots != 1 {
		t.Fatalf("slots = %d", res.Slots)
	}
}

func TestTraceProduct(t *testing.T) {
	a := linalg.FromRows([][]complex128{{1, 2}, {3, 4}})
	b := linalg.FromRows([][]complex128{{5, 6}, {7, 8}})
	want := a.Mul(b).Trace()
	if got := traceProduct(a, b); got != want {
		t.Fatalf("traceProduct %v, want %v", got, want)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
