package qoc

import (
	"context"
	"errors"
	"testing"
	"time"

	"epoc/internal/faultclock"
	"epoc/internal/gate"
)

// TestGRAPEBudgetItersReturnsBestSoFar: an iteration budget below the
// convergence point stops the run with ErrBudget, and the Result still
// carries the best amplitudes and an actually-evaluated fidelity.
func TestGRAPEBudgetItersReturnsBestSoFar(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	full := GRAPE(m, gate.New(gate.X).Matrix(), 12, GRAPEConfig{MaxIter: 400})
	if full.Err != nil {
		t.Fatalf("unbudgeted run reported Err = %v", full.Err)
	}
	capped := GRAPE(m, gate.New(gate.X).Matrix(), 12, GRAPEConfig{MaxIter: 400, BudgetIters: 3})
	if !faultclock.IsBudget(capped.Err) {
		t.Fatalf("capped run Err = %v, want ErrBudget", capped.Err)
	}
	if capped.Iterations > 3 {
		t.Fatalf("capped run took %d iterations, budget was 3", capped.Iterations)
	}
	if capped.Amps == nil {
		t.Fatal("capped run returned no amplitudes")
	}
	if capped.Fidelity <= 0 {
		t.Fatalf("capped run fidelity %v was never evaluated", capped.Fidelity)
	}
	// The partial result must be honest: propagating its amps must
	// reproduce its reported fidelity.
	u := m.Propagate(capped.Amps)
	if f := Fidelity(u, gate.New(gate.X).Matrix()); f < capped.Fidelity-1e-9 {
		t.Fatalf("propagated fidelity %v < reported %v", f, capped.Fidelity)
	}
	if full.Fidelity < capped.Fidelity {
		t.Fatalf("more iterations made the result worse: %v vs %v", full.Fidelity, capped.Fidelity)
	}
}

// TestGRAPECancelAtExactIteration: a trip armed on the Kth iteration
// check cancels the run at exactly that iteration — no sleeps, no
// wall-clock races.
func TestGRAPECancelAtExactIteration(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := faultclock.NewInjector()
	const k = 5
	inj.TripAfter(faultclock.SiteGRAPEIter, k, cancel)
	res := GRAPE(m, gate.New(gate.CX).Matrix(), 40, GRAPEConfig{
		MaxIter: 400,
		Target:  1.1, // unreachable: only the cancel can stop the run early
		Gate:    &faultclock.Gate{Ctx: ctx, Inj: inj},
	})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if got := inj.Hits(faultclock.SiteGRAPEIter); got != k {
		t.Fatalf("run performed %d iteration checks, want exactly %d", got, k)
	}
}

// TestGRAPEDeadlineWithFakeClock: the deadline engages against the
// injected clock, tripped at a chosen iteration.
func TestGRAPEDeadlineWithFakeClock(t *testing.T) {
	m := StandardModel(2, ModelOptions{})
	fake := faultclock.NewFake()
	inj := faultclock.NewInjector()
	inj.TripAfter(faultclock.SiteGRAPEIter, 2, func() { fake.Advance(time.Hour) })
	res := GRAPE(m, gate.New(gate.CX).Matrix(), 40, GRAPEConfig{
		MaxIter: 400,
		Target:  1.1,
		Gate: &faultclock.Gate{
			Clock:    fake,
			Deadline: fake.Now().Add(time.Minute),
			Inj:      inj,
		},
	})
	if !faultclock.IsBudget(res.Err) {
		t.Fatalf("Err = %v, want ErrBudget", res.Err)
	}
	if res.Amps == nil || res.Fidelity <= 0 {
		t.Fatalf("deadline exit lost the best-so-far result: %+v", res)
	}
}

// TestSearchDurationPartialCarriesBestFidelity: when a probe stops on
// a budget, the search returns the best fidelity found so far — the
// satellite fix this PR makes to Runner/Result.
func TestSearchDurationPartialCarriesBestFidelity(t *testing.T) {
	probes := 0
	run := func(slots int) Result {
		probes++
		switch probes {
		case 1: // the maxSlots probe: passes the target
			return Result{Fidelity: 0.9995, Slots: slots, Duration: float64(slots)}
		default: // the first bisection probe: budget expires mid-run
			return Result{Fidelity: 0.41, Slots: slots, Duration: float64(slots), Err: faultclock.ErrBudget}
		}
	}
	res := SearchDuration(nil, 2, 64, 2, 0.999, run)
	if !faultclock.IsBudget(res.Err) {
		t.Fatalf("Err = %v, want ErrBudget", res.Err)
	}
	if res.Fidelity != 0.9995 {
		t.Fatalf("partial result fidelity %v, want the best-so-far 0.9995", res.Fidelity)
	}
	if res.Slots != 64 {
		t.Fatalf("partial result slots %d, want the passing maxSlots probe 64", res.Slots)
	}
	if probes != 2 {
		t.Fatalf("search kept probing after the budget: %d probes", probes)
	}
}

// TestSearchDurationPrefersShorterPassingProbe: among completed
// target-reaching probes the best-so-far is the shortest, so a late
// budget exit does not regress to the first (longest) probe.
func TestSearchDurationPrefersShorterPassingProbe(t *testing.T) {
	probes := 0
	run := func(slots int) Result {
		probes++
		r := Result{Slots: slots, Duration: float64(slots)}
		switch {
		case probes <= 2:
			r.Fidelity = 0.9999 // maxSlots and the midpoint both pass
		default:
			r.Fidelity = 0.2
			r.Err = faultclock.ErrBudget
		}
		return r
	}
	res := SearchDuration(nil, 2, 64, 2, 0.999, run)
	if !faultclock.IsBudget(res.Err) {
		t.Fatalf("Err = %v, want ErrBudget", res.Err)
	}
	if res.Slots >= 64 || res.Fidelity < 0.999 {
		t.Fatalf("best-so-far should be the shorter passing probe, got slots=%d fid=%v", res.Slots, res.Fidelity)
	}
}

// TestSearchDurationCanceledBeforeFirstProbe: an already-canceled gate
// stops the search before any optimizer work runs.
func TestSearchDurationCanceledBeforeFirstProbe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	probes := 0
	res := SearchDuration(&faultclock.Gate{Ctx: ctx}, 2, 64, 2, 0.999, func(slots int) Result {
		probes++
		return Result{Fidelity: 1}
	})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if probes != 0 {
		t.Fatalf("canceled search still ran %d probes", probes)
	}
}

// TestSearchDurationUnbudgetedUnchanged: without a gate or errors the
// restructured search behaves exactly as before (smallest passing slot
// count, nil Err).
func TestSearchDurationUnbudgetedUnchanged(t *testing.T) {
	run := func(slots int) Result {
		fid := 0.5
		if slots >= 10 {
			fid = 1.0
		}
		return Result{Fidelity: fid, Slots: slots, Duration: float64(slots)}
	}
	res := SearchDuration(nil, 2, 64, 2, 0.999, run)
	if res.Err != nil {
		t.Fatalf("Err = %v, want nil", res.Err)
	}
	if res.Slots != 10 {
		t.Fatalf("found %d slots, want the smallest passing grid point 10", res.Slots)
	}
}

// TestCRABBudgetIters: the cap marks a below-target result degraded
// and keeps the best coefficients found.
func TestCRABBudgetIters(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	res := CRAB(m, gate.New(gate.X).Matrix(), 16, CRABConfig{MaxIter: 3000, BudgetIters: 5, Restarts: 1})
	if !faultclock.IsBudget(res.Err) {
		t.Fatalf("Err = %v, want ErrBudget", res.Err)
	}
	if res.Amps == nil {
		t.Fatal("budgeted CRAB returned no amplitudes")
	}
}

// TestCRABCanceledBeforeFirstRestart: cancellation is observed at the
// restart boundary and reported as the context error.
func TestCRABCanceledBeforeFirstRestart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := StandardModel(1, ModelOptions{})
	res := CRAB(m, gate.New(gate.X).Matrix(), 16, CRABConfig{Gate: &faultclock.Gate{Ctx: ctx}})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
}
