package qoc

import (
	"math"
	"testing"

	"epoc/internal/gate"
	"epoc/internal/pulse"
)

const anharm = -2.1 // ≈ -2π·330 MHz, typical transmon

func TestQutritSlowPulseIsAccurate(t *testing.T) {
	// A slow (adiabatic) Gaussian π-pulse barely sees the |2⟩ level.
	m := NewQutritModel(anharm, 1)
	env := pulse.Gaussian(math.Pi, 60, 1)
	iq := make([][]float64, len(env))
	for k := range env {
		iq[k] = []float64{env[k], 0}
	}
	u := m.Propagate(iq)
	if f := m.GateFidelity(u, gate.New(gate.X).Matrix()); f < 0.999 {
		t.Fatalf("slow π-pulse fidelity %v", f)
	}
	if l := m.Leakage(u); l > 1e-3 {
		t.Fatalf("slow pulse leaks %v", l)
	}
}

func TestQutritFastPulseLeaks(t *testing.T) {
	// A very fast Gaussian π-pulse (4 ns, σ·|α| ≈ 2) drives the 1↔2
	// transition appreciably; smooth slow pulses do not (previous test).
	m := NewQutritModel(anharm, 0.25)
	env := pulse.Gaussian(math.Pi, 4, 0.25)
	iq := make([][]float64, len(env))
	for k := range env {
		iq[k] = []float64{env[k], 0}
	}
	u := m.Propagate(iq)
	if l := m.Leakage(u); l < 1e-3 {
		t.Fatalf("fast pulse should leak, got %v", l)
	}
}

func TestDRAGSuppressesLeakage(t *testing.T) {
	// At the same (fast) speed, the DRAG quadrature must cut leakage
	// relative to the plain Gaussian — the reason DRAG exists and the
	// reason the envelope library provides it.
	m := NewQutritModel(anharm, 0.25)
	const dur = 5.0
	plain := pulse.DRAG(math.Pi, dur, 0.25, 0)
	dragged := pulse.DRAG(math.Pi, dur, 0.25, m.DRAGBeta())
	lPlain := m.Leakage(m.Propagate(plain))
	lDrag := m.Leakage(m.Propagate(dragged))
	t.Logf("leakage: plain=%.2e drag=%.2e (β=%.3f)", lPlain, lDrag, m.DRAGBeta())
	if lPlain < 1e-4 {
		t.Fatalf("test precondition: plain pulse too adiabatic (leakage %v)", lPlain)
	}
	if lDrag > lPlain/2 {
		t.Fatalf("DRAG did not suppress leakage: %v vs %v", lDrag, lPlain)
	}
}

func TestQutritDriftPhases(t *testing.T) {
	// With no drive, |2⟩ rotates as e^{-iαt} under exp(-iH t).
	m := NewQutritModel(anharm, 1)
	u := m.Propagate([][]float64{{0, 0}, {0, 0}})
	if d := math.Abs(real(u.At(0, 0)) - 1); d > 1e-9 {
		t.Fatal("|0⟩ should be stationary")
	}
	gotPhase := math.Atan2(imag(u.At(2, 2)), real(u.At(2, 2)))
	diff := math.Mod(gotPhase-(-anharm*2), 2*math.Pi)
	if diff > math.Pi {
		diff -= 2 * math.Pi
	} else if diff < -math.Pi {
		diff += 2 * math.Pi
	}
	if math.Abs(diff) > 1e-9 {
		t.Fatalf("|2⟩ phase %v, want %v (mod 2π)", gotPhase, -anharm*2)
	}
}

func TestDRAGBetaZeroAnharmonicity(t *testing.T) {
	if NewQutritModel(0, 1).DRAGBeta() != 0 {
		t.Fatal("zero anharmonicity should give zero beta")
	}
}
