package qoc

import (
	"testing"

	"epoc/internal/gate"
	"epoc/internal/linalg"
)

func TestNearestDeterministicTieBreak(t *testing.T) {
	target := gate.New(gate.RX, 0.5).Matrix()
	near := gate.New(gate.RX, 0.52).Matrix()
	// Two identical candidates: the lowest index must win, every time.
	cands := []*linalg.Matrix{near, near.Clone()}
	idx, dist := Nearest(cands, target, 0.75)
	if idx != 0 {
		t.Fatalf("tie broke to index %d, want 0", idx)
	}
	if dist <= 0 || dist > 0.75 {
		t.Fatalf("distance %g out of range", dist)
	}
}

func TestNearestSkipsUnusableCandidates(t *testing.T) {
	target := gate.New(gate.RX, 0.5).Matrix()
	cands := []*linalg.Matrix{
		nil,                        // entry without raw amplitudes
		gate.New(gate.CX).Matrix(), // wrong dimension
		gate.New(gate.RX, 3.0).Matrix(),
	}
	// RX(3.0) is far from RX(0.5): beyond maxDist nothing qualifies.
	if idx, _ := Nearest(cands, target, 0.1); idx != -1 {
		t.Fatalf("distant candidate accepted at index %d", idx)
	}
	// With a permissive bound the in-dimension candidate wins.
	if idx, _ := Nearest(cands, target, 2); idx != 2 {
		t.Fatalf("nearest index %d, want 2", idx)
	}
}

// TestWarmStartConvergesNoWorseThanCold is the library-fixture
// contract behind the persistent store's warm starts: seeding GRAPE
// from a converged neighbour's amplitudes must reach the fidelity
// target at least as fast as a cold random start, and never converge
// below it when the cold run reaches it.
func TestWarmStartConvergesNoWorseThanCold(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	cfg := GRAPEConfig{MaxIter: 300, Target: 0.999, Seed: 1}
	const slots = 8

	// The stored neighbour: a converged pulse for RX(0.5).
	neighbour := GRAPE(m, gate.New(gate.RX, 0.5).Matrix(), slots, cfg)
	if neighbour.Fidelity < cfg.Target {
		t.Fatalf("fixture did not converge: fidelity %g", neighbour.Fidelity)
	}

	// The new request: RX(0.55) — close, but outside exact-match reach.
	target := gate.New(gate.RX, 0.55).Matrix()
	cold := GRAPE(m, target, slots, cfg)
	warm := WarmStartGRAPE(m, target, slots, neighbour.Amps, cfg)

	if cold.Fidelity >= cfg.Target && warm.Fidelity < cfg.Target {
		t.Fatalf("warm start converged below target: warm %g, cold %g", warm.Fidelity, cold.Fidelity)
	}
	if warm.Fidelity < cold.Fidelity-1e-3 {
		t.Fatalf("warm fidelity %g grossly below cold %g", warm.Fidelity, cold.Fidelity)
	}
	if warm.Iterations > cold.Iterations {
		t.Fatalf("warm start needed %d iterations, cold needed %d — no savings",
			warm.Iterations, cold.Iterations)
	}
	t.Logf("cold: %d iters, fidelity %.6f; warm: %d iters, fidelity %.6f",
		cold.Iterations, cold.Fidelity, warm.Iterations, warm.Fidelity)
}

// TestWarmStartEmptyAmpsFallsBackToCold: an entry without raw
// amplitudes degrades to a plain GRAPE run, bit-identically.
func TestWarmStartEmptyAmpsFallsBackToCold(t *testing.T) {
	m := StandardModel(1, ModelOptions{})
	cfg := GRAPEConfig{MaxIter: 50, Target: 0.999, Seed: 1}
	target := gate.New(gate.RX, 0.7).Matrix()
	a := GRAPE(m, target, 8, cfg)
	b := WarmStartGRAPE(m, target, 8, nil, cfg)
	if a.Fidelity != b.Fidelity || a.Iterations != b.Iterations {
		t.Fatalf("nil warm start diverged from cold: %+v vs %+v", a, b)
	}
}
