// Package metrics renders an obs.Snapshot in Prometheus text
// exposition format v0.0.4 — the scrape surface behind GET /metrics on
// debugsrv and epoc-serve. It is pure stdlib and read-only: the hot
// path keeps recording into obs, and a scrape snapshots + renders.
//
// Naming scheme (DESIGN.md §15):
//
//   - every exported name is epoc_-prefixed snake_case (the metricname
//     lint check enforces this);
//   - obs counters become counter families ending _total, with a
//     rename table for the names operators alert on
//     (synthcache/hit → epoc_synthcache_hits_total) and a generic
//     slash→underscore fallback for the rest
//     (store/warm/pulses → epoc_store_warm_pulses_total);
//   - obs timers named stage/<x> fold into ONE histogram family,
//     epoc_stage_seconds{stage="<x>"}, so per-stage latency is a label
//     query, not N families; other timers become their own
//     epoc_<name>_seconds histograms;
//   - obs distributions become unitless epoc_<name> histograms;
//   - gauges (queue depth, inflight, EWMA) are supplied by the caller
//     per scrape, since they are instantaneous reads, not accumulated
//     state.
//
// Histograms share the fixed log-spaced bucket layout from
// obs.BucketBounds and are emitted with cumulative _bucket{le=}, _sum
// and _count series. Families are sorted by name and series within a
// family by label value, so the exposition is byte-deterministic for a
// given snapshot — golden-testable.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"epoc/internal/obs"
)

// ContentType is the Content-Type for Prometheus text format v0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// stageFamily is the shared histogram family for stage/<x> timers;
// required by the serve acceptance criteria as
// epoc_stage_seconds_bucket{stage=...}.
const stageFamily = "epoc_stage_seconds"

// promRenames maps the obs counter names operators alert on to their
// canonical exposition names. Everything else falls through to the
// generic epoc_<sanitized>_total form.
var promRenames = map[string]string{
	"synthcache/hit":       "epoc_synthcache_hits_total",
	"synthcache/miss":      "epoc_synthcache_misses_total",
	"synthcache/coalesced": "epoc_synthcache_coalesced_total",
	"library/hits":         "epoc_library_hits_total",
	"library/misses":       "epoc_library_misses_total",
}

// Gauge is one instantaneous value supplied by the caller at scrape
// time (queue depth, inflight jobs, EWMA compile time). Name must be
// epoc_-prefixed snake_case; Labels may be nil.
type Gauge struct {
	Name   string
	Help   string
	Labels map[string]string
	Value  float64
}

// Render writes the snapshot plus caller gauges as Prometheus text
// format v0.0.4. A nil snapshot renders only the gauges. The output is
// deterministic: families alphabetical, series within a family sorted
// by label.
func Render(w io.Writer, snap *obs.Snapshot, gauges []Gauge) error {
	var b strings.Builder
	writeCounters(&b, snap)
	writeGauges(&b, gauges)
	writeTimers(&b, snap)
	writeDists(&b, snap)

	// Assemble families alphabetically for a stable exposition.
	_, err := io.WriteString(w, b.String())
	return err
}

// family is one # HELP/# TYPE block plus its sample lines.
type family struct {
	name  string
	typ   string
	help  string
	lines []string
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, l := range f.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
}

func writeFamilies(b *strings.Builder, fams map[string]*family) {
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fams[n].write(b)
	}
}

func writeCounters(b *strings.Builder, snap *obs.Snapshot) {
	if snap == nil || len(snap.Counters) == 0 {
		return
	}
	fams := map[string]*family{}
	for _, k := range snap.CounterNames() {
		name := CounterName(k)
		fams[name] = &family{
			name:  name,
			typ:   "counter",
			help:  fmt.Sprintf("obs counter %q.", k),
			lines: []string{fmt.Sprintf("%s %d", name, snap.Counters[k])},
		}
	}
	writeFamilies(b, fams)
}

func writeGauges(b *strings.Builder, gauges []Gauge) {
	if len(gauges) == 0 {
		return
	}
	fams := map[string]*family{}
	for _, g := range gauges {
		f := fams[g.Name]
		if f == nil {
			f = &family{name: g.Name, typ: "gauge", help: g.Help}
			fams[g.Name] = f
		}
		f.lines = append(f.lines,
			fmt.Sprintf("%s%s %s", g.Name, labelString(g.Labels), formatFloat(g.Value)))
	}
	for _, f := range fams {
		sort.Strings(f.lines)
	}
	writeFamilies(b, fams)
}

func writeTimers(b *strings.Builder, snap *obs.Snapshot) {
	if snap == nil || len(snap.Timers) == 0 {
		return
	}
	fams := map[string]*family{}
	names := make([]string, 0, len(snap.Timers))
	for k := range snap.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := snap.Timers[k]
		if stage, ok := strings.CutPrefix(k, "stage/"); ok {
			f := fams[stageFamily]
			if f == nil {
				f = &family{
					name: stageFamily,
					typ:  "histogram",
					help: "Pipeline stage latency in seconds, labeled by stage.",
				}
				fams[stageFamily] = f
			}
			appendHistogram(f, stageFamily, map[string]string{"stage": stage},
				t.Buckets, t.Total.Seconds(), t.Count)
			continue
		}
		name := sanitize(k) + "_seconds"
		f := &family{
			name: name,
			typ:  "histogram",
			help: fmt.Sprintf("obs timer %q in seconds.", k),
		}
		appendHistogram(f, name, nil, t.Buckets, t.Total.Seconds(), t.Count)
		fams[name] = f
	}
	writeFamilies(b, fams)
}

func writeDists(b *strings.Builder, snap *obs.Snapshot) {
	if snap == nil || len(snap.Dists) == 0 {
		return
	}
	fams := map[string]*family{}
	for _, k := range snap.DistNames() {
		d := snap.Dists[k]
		name := sanitize(k)
		f := &family{
			name: name,
			typ:  "histogram",
			help: fmt.Sprintf("obs distribution %q.", k),
		}
		appendHistogram(f, name, nil, d.Buckets, d.Sum, d.Count)
		fams[name] = f
	}
	writeFamilies(b, fams)
}

// appendHistogram emits cumulative _bucket{le=} lines, _sum and _count
// for one series of a histogram family. obs buckets are per-bucket
// counts; Prometheus buckets are cumulative.
func appendHistogram(f *family, name string, labels map[string]string, h obs.Hist, sum float64, count int64) {
	bounds := obs.BucketBounds()
	var cum int64
	for i, bound := range bounds {
		cum += h[i]
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
			name, labelStringWith(labels, "le", formatFloat(bound)), cum))
	}
	cum += h[len(bounds)]
	f.lines = append(f.lines, fmt.Sprintf("%s_bucket%s %d",
		name, labelStringWith(labels, "le", "+Inf"), cum))
	f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", name, labelString(labels), formatFloat(sum)))
	f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", name, labelString(labels), count))
}

// CounterName maps an obs counter name to its exposition name: the
// rename table first, then the generic epoc_<sanitized>_total form.
func CounterName(obsName string) string {
	if n, ok := promRenames[obsName]; ok {
		return n
	}
	return sanitize(obsName) + "_total"
}

// sanitize maps an obs slash-path name to epoc_-prefixed snake_case:
// lowercase, every non-[a-z0-9] run collapses to one underscore.
func sanitize(name string) string {
	var b strings.Builder
	b.WriteString("epoc")
	prev := '_'
	for _, r := range strings.ToLower(name) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			if b.Len() == 4 { // after "epoc": separator before the name body
				b.WriteByte('_')
			}
			b.WriteRune(r)
			prev = r
			continue
		}
		if prev != '_' && b.Len() > 4 {
			b.WriteByte('_')
			prev = '_'
		}
	}
	s := b.String()
	return strings.TrimRight(s, "_")
}

// labelString renders {k="v",...} with keys sorted, or "" when empty.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	return labelStringWith(labels, "", "")
}

// labelStringWith renders labels plus one extra pair (appended last,
// matching the Prometheus convention of le as the final label). The
// extra pair is skipped when extraKey is empty.
func labelStringWith(labels map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the text-format label value escaping: backslash,
// double-quote and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the shortest way that round-trips —
// matching the le bound format the strict parser checks.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves GET /metrics: snap() supplies the current obs
// snapshot and gauges() the instantaneous gauge values; either may be
// nil. Rendering happens into a buffer first so a slow client never
// observes a half-written exposition.
func Handler(snap func() *obs.Snapshot, gauges func() []Gauge) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var s *obs.Snapshot
		if snap != nil {
			s = snap()
		}
		var gs []Gauge
		if gauges != nil {
			gs = gauges()
		}
		var b strings.Builder
		if err := Render(&b, s, gs); err != nil {
			http.Error(w, "render failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = io.WriteString(w, b.String())
	})
}
