package metrics

import (
	"flag"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"epoc/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a snapshot as a struct literal — never from
// real recorded durations — so the rendered bytes are deterministic.
func goldenSnapshot() *obs.Snapshot {
	zxBuckets := obs.Hist{}
	zxBuckets[6] = 2 // two spans in (1.024ms, 4.096ms]
	zxBuckets[obs.NumBuckets] = 1
	synthBuckets := obs.Hist{}
	synthBuckets[10] = 1
	distBuckets := obs.Hist{}
	distBuckets[14] = 3 // iteration counts ~120 land under bound 4^14*1e-6 = 268.4

	return &obs.Snapshot{
		Counters: map[string]int64{
			"synthcache/hit":    7,
			"synthcache/miss":   2,
			"library/hits":      12,
			"library/misses":    3,
			"store/warm/pulses": 0,
			"serve/requests":    4,
		},
		Timers: map[string]obs.TimerStats{
			"stage/zx": {
				Count:   3,
				Total:   10 * time.Millisecond,
				Min:     2 * time.Millisecond,
				Max:     5 * time.Millisecond,
				Buckets: zxBuckets,
			},
			"stage/synth": {
				Count:   1,
				Total:   250 * time.Millisecond,
				Min:     250 * time.Millisecond,
				Max:     250 * time.Millisecond,
				Buckets: synthBuckets,
			},
			"compile": {
				Count:   1,
				Total:   260 * time.Millisecond,
				Min:     260 * time.Millisecond,
				Max:     260 * time.Millisecond,
				Buckets: synthBuckets,
			},
		},
		Dists: map[string]obs.DistStats{
			"qoc/grape/iterations": {
				Count:   3,
				Sum:     360,
				Min:     100,
				Max:     140,
				Buckets: distBuckets,
			},
		},
	}
}

func goldenGauges() []Gauge {
	return []Gauge{
		{Name: "epoc_serve_queue_depth", Help: "Jobs waiting in the admission queue.", Value: 3},
		{Name: "epoc_serve_inflight", Help: "Jobs currently compiling.", Value: 2},
		{Name: "epoc_serve_avg_compile_ms", Help: "EWMA of compile wall time in milliseconds.", Value: 41.5},
		{Name: "epoc_build_info", Help: "Build metadata.", Labels: map[string]string{"module": `epoc "quoted\path"`}, Value: 1},
	}
}

func TestRenderGolden(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, goldenSnapshot(), goldenGauges()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	const path = "testdata/golden.prom"
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file; run with -update if intended.\ngot:\n%s", got)
	}
	// The golden exposition must itself satisfy the strict parser.
	if _, err := Parse(got); err != nil {
		t.Fatalf("golden exposition rejected by strict parser: %v", err)
	}
}

func TestRenderDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := Render(&a, goldenSnapshot(), goldenGauges()); err != nil {
		t.Fatal(err)
	}
	if err := Render(&b, goldenSnapshot(), goldenGauges()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Render is not deterministic for identical input")
	}
}

func TestRenderedHistogramSemantics(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, goldenSnapshot(), nil); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	stage, ok := byName["epoc_stage_seconds"]
	if !ok || stage.Type != "histogram" {
		t.Fatalf("missing epoc_stage_seconds histogram; families: %v", names(fams))
	}
	// Both stages appear as labels of ONE family.
	stages := map[string]bool{}
	for _, s := range stage.Samples {
		if v, ok := s.Labels["stage"]; ok {
			stages[v] = true
		}
	}
	if !stages["zx"] || !stages["synth"] {
		t.Fatalf("stage labels: %v", stages)
	}

	if f := byName["epoc_synthcache_hits_total"]; f.Type != "counter" || f.Samples[0].Value != 7 {
		t.Fatalf("synthcache hits: %+v", f)
	}
	if f := byName["epoc_store_warm_pulses_total"]; f.Type != "counter" || f.Samples[0].Value != 0 {
		t.Fatalf("store warm pulses: %+v", f)
	}
	if f := byName["epoc_qoc_grape_iterations"]; f.Type != "histogram" {
		t.Fatalf("dist histogram: %+v", f)
	}
	if f := byName["epoc_compile_seconds"]; f.Type != "histogram" {
		t.Fatalf("plain timer histogram: %+v", f)
	}
}

func names(fams []Family) []string {
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

func TestCounterName(t *testing.T) {
	cases := map[string]string{
		"synthcache/hit":          "epoc_synthcache_hits_total",
		"library/misses":          "epoc_library_misses_total",
		"store/warm/pulses":       "epoc_store_warm_pulses_total",
		"serve/rejected/draining": "epoc_serve_rejected_draining_total",
		"qoc/runs":                "epoc_qoc_runs_total",
	}
	for in, want := range cases {
		if got := CounterName(in); got != want {
			t.Errorf("CounterName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"stage/zx":        "epoc_stage_zx",
		"serve/queue_ms":  "epoc_serve_queue_ms",
		"Weird--Name!!x":  "epoc_weird_name_x",
		"trailing/":       "epoc_trailing",
		"a//b":            "epoc_a_b",
		"UPPER/lower/123": "epoc_upper_lower_123",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	g := []Gauge{{
		Name:   "epoc_test_gauge",
		Help:   "escaping test.",
		Labels: map[string]string{"k": "a\\b\"c\nd"},
		Value:  1,
	}}
	if err := Render(&b, nil, g); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `k="a\\b\"c\nd"`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	fams, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["k"]; got != "a\\b\"c\nd" {
		t.Fatalf("round-tripped label = %q", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no trailing newline":    "# HELP epoc_x_total h\n# TYPE epoc_x_total counter\nepoc_x_total 1",
		"sample before HELP":     "epoc_x_total 1\n",
		"TYPE without HELP":      "# TYPE epoc_x_total counter\nepoc_x_total 1\n",
		"bad name prefix":        "# HELP my_metric h\n# TYPE my_metric counter\nmy_metric 1\n",
		"double underscore":      "# HELP epoc_a__b_total h\n# TYPE epoc_a__b_total counter\nepoc_a__b_total 1\n",
		"counter without _total": "# HELP epoc_x h\n# TYPE epoc_x counter\nepoc_x 1\n",
		"negative counter":       "# HELP epoc_x_total h\n# TYPE epoc_x_total counter\nepoc_x_total -1\n",
		"duplicate series":       "# HELP epoc_x_total h\n# TYPE epoc_x_total counter\nepoc_x_total 1\nepoc_x_total 2\n",
		"duplicate family": "# HELP epoc_x_total h\n# TYPE epoc_x_total counter\nepoc_x_total 1\n" +
			"# HELP epoc_x_total h\n# TYPE epoc_x_total counter\nepoc_x_total 2\n",
		"histogram missing +Inf": "# HELP epoc_h h\n# TYPE epoc_h histogram\n" +
			"epoc_h_bucket{le=\"1\"} 1\nepoc_h_sum 1\nepoc_h_count 1\n",
		"histogram non-ascending le": "# HELP epoc_h h\n# TYPE epoc_h histogram\n" +
			"epoc_h_bucket{le=\"2\"} 1\nepoc_h_bucket{le=\"1\"} 1\n" +
			"epoc_h_bucket{le=\"+Inf\"} 1\nepoc_h_sum 1\nepoc_h_count 1\n",
		"histogram non-monotone buckets": "# HELP epoc_h h\n# TYPE epoc_h histogram\n" +
			"epoc_h_bucket{le=\"1\"} 5\nepoc_h_bucket{le=\"2\"} 3\n" +
			"epoc_h_bucket{le=\"+Inf\"} 5\nepoc_h_sum 1\nepoc_h_count 5\n",
		"histogram +Inf != count": "# HELP epoc_h h\n# TYPE epoc_h histogram\n" +
			"epoc_h_bucket{le=\"1\"} 1\nepoc_h_bucket{le=\"+Inf\"} 2\n" +
			"epoc_h_sum 1\nepoc_h_count 3\n",
		"histogram missing sum": "# HELP epoc_h h\n# TYPE epoc_h histogram\n" +
			"epoc_h_bucket{le=\"+Inf\"} 1\nepoc_h_count 1\n",
		"unterminated label": "# HELP epoc_g h\n# TYPE epoc_g gauge\nepoc_g{k=\"v 1\n",
		"bad escape":         "# HELP epoc_g h\n# TYPE epoc_g gauge\nepoc_g{k=\"\\t\"} 1\n",
		"unsupported type":   "# HELP epoc_g h\n# TYPE epoc_g summary\nepoc_g 1\n",
		"blank line":         "# HELP epoc_g h\n# TYPE epoc_g gauge\n\nepoc_g 1\n",
		"trailing timestamp": "# HELP epoc_g h\n# TYPE epoc_g gauge\nepoc_g 1 1234\n",
	}
	for name, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
}

func TestParseAcceptsValid(t *testing.T) {
	text := "# HELP epoc_g h\n# TYPE epoc_g gauge\nepoc_g{a=\"x\",b=\"y\"} 1.5\nepoc_g{a=\"z\"} 2\n"
	fams, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 2 {
		t.Fatalf("parsed: %+v", fams)
	}
}

func TestHandler(t *testing.T) {
	r := obs.New()
	r.Add("synthcache/hit", 1)
	r.Span("stage/zx").End()
	h := Handler(r.Snapshot, func() []Gauge {
		return []Gauge{{Name: "epoc_serve_queue_depth", Help: "queue depth.", Value: 0}}
	})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q", ct)
	}
	fams, err := Parse(rec.Body.String())
	if err != nil {
		t.Fatalf("live handler output rejected: %v\n%s", err, rec.Body.String())
	}
	if len(fams) < 3 {
		t.Fatalf("families: %v", names(fams))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d, want 405", rec.Code)
	}
}

func TestHandlerNilFuncs(t *testing.T) {
	h := Handler(nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("empty snapshot should render empty exposition, got %q", rec.Body.String())
	}
}
