// Strict Prometheus text-format parser. This is a validator, not a
// general scrape client: it accepts exactly the exposition this repo
// emits and rejects everything questionable — missing HELP/TYPE,
// interleaved families, duplicate series, non-monotone histogram
// buckets, names outside the epoc_ snake_case convention. The golden
// tests and the metrics-smoke CI job run every scrape through it, so a
// rendering regression fails loudly instead of silently confusing a
// real Prometheus server.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Family is one parsed metric family.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram
	Help    string
	Samples []Sample
}

// Sample is one parsed sample line.
type Sample struct {
	Name   string // full sample name, e.g. epoc_stage_seconds_bucket
	Labels map[string]string
	Value  float64
}

var (
	familyNameRE = regexp.MustCompile(`^epoc_[a-z][a-z0-9_]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Parse validates text as strict Prometheus exposition format v0.0.4
// under this repo's conventions and returns the parsed families in
// order of appearance.
func Parse(text string) ([]Family, error) {
	var (
		fams    []Family
		cur     *Family
		sawHelp = map[string]bool{}
		sawType = map[string]bool{}
		seen    = map[string]bool{} // closed families: no interleaving
	)
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "" {
		return nil, fmt.Errorf("exposition must end with a newline")
	}
	lines = lines[:len(lines)-1]
	for i, line := range lines {
		lineNo := i + 1
		switch {
		case line == "":
			return nil, fmt.Errorf("line %d: blank line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			if err := checkFamilyName(name); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if sawHelp[name] || seen[name] {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			if cur != nil {
				seen[cur.Name] = true
			}
			sawHelp[name] = true
			fams = append(fams, Family{Name: name, Help: help})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			name, typ := fields[0], fields[1]
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, name)
			}
			if sawType[name] {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unsupported type %q", lineNo, typ)
			}
			sawType[name] = true
			cur.Type = typ
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", lineNo, line)
		default:
			s, err := parseSample(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			if cur == nil || cur.Type == "" {
				return nil, fmt.Errorf("line %d: sample %s before HELP/TYPE", lineNo, s.Name)
			}
			base := baseName(s.Name, cur.Type)
			if base != cur.Name {
				return nil, fmt.Errorf("line %d: sample %s does not belong to family %s", lineNo, s.Name, cur.Name)
			}
			cur.Samples = append(cur.Samples, s)
		}
	}
	for _, f := range fams {
		if err := checkFamily(f); err != nil {
			return nil, fmt.Errorf("family %s: %v", f.Name, err)
		}
	}
	return fams, nil
}

// checkFamilyName enforces the repo convention: epoc_-prefixed
// snake_case, no double underscores, no trailing underscore.
func checkFamilyName(name string) error {
	if !familyNameRE.MatchString(name) {
		return fmt.Errorf("family name %q is not epoc_-prefixed snake_case", name)
	}
	if strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		return fmt.Errorf("family name %q has empty name segments", name)
	}
	return nil
}

// baseName strips the histogram sample suffixes so a sample line can
// be matched to its family.
func baseName(sample, typ string) string {
	if typ != "histogram" {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if s, ok := strings.CutSuffix(sample, suf); ok {
			return s
		}
	}
	return sample
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("malformed labels in %q", line)
			}
			key := rest[:eq]
			if !labelNameRE.MatchString(key) {
				return s, fmt.Errorf("bad label name %q", key)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				return s, fmt.Errorf("unquoted label value in %q", line)
			}
			val, n, err := unescapeLabel(rest[1:])
			if err != nil {
				return s, err
			}
			if _, dup := s.Labels[key]; dup {
				return s, fmt.Errorf("duplicate label %q", key)
			}
			s.Labels[key] = val
			rest = rest[1+n+1:] // opening quote, value, closing quote
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("malformed label list in %q", line)
		}
		if len(rest) == 0 || rest[0] != ' ' {
			return s, fmt.Errorf("missing space before value in %q", line)
		}
		rest = rest[1:]
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("missing value in %q", line)
		}
	}
	s.Name = name
	if strings.Contains(rest, " ") {
		return s, fmt.Errorf("trailing content after value in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// unescapeLabel consumes an escaped label value up to (not including)
// the closing quote, returning the value and the number of raw bytes
// consumed.
func unescapeLabel(raw string) (string, int, error) {
	var b strings.Builder
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '"':
			return b.String(), i, nil
		case '\\':
			i++
			if i >= len(raw) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			switch raw[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c in label value", raw[i])
			}
		case '\n':
			return "", 0, fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(raw[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkFamily validates per-type invariants: counters end _total and
// are non-negative; histograms have ascending le, cumulative
// monotone buckets, a +Inf bucket equal to _count, and a _sum, per
// label set.
func checkFamily(f Family) error {
	if f.Type == "" {
		return fmt.Errorf("missing TYPE")
	}
	if len(f.Samples) == 0 {
		return fmt.Errorf("no samples")
	}
	switch f.Type {
	case "counter":
		if !strings.HasSuffix(f.Name, "_total") {
			return fmt.Errorf("counter family must end _total")
		}
		for _, s := range f.Samples {
			if s.Value < 0 {
				return fmt.Errorf("negative counter value %g", s.Value)
			}
		}
		if err := checkDuplicateSeries(f.Samples); err != nil {
			return err
		}
	case "gauge":
		if err := checkDuplicateSeries(f.Samples); err != nil {
			return err
		}
	case "histogram":
		return checkHistogram(f)
	}
	return nil
}

func checkDuplicateSeries(samples []Sample) error {
	seen := map[string]bool{}
	for _, s := range samples {
		key := s.Name + seriesKey(s.Labels)
		if seen[key] {
			return fmt.Errorf("duplicate series %s%s", s.Name, seriesKey(s.Labels))
		}
		seen[key] = true
	}
	return nil
}

func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

// histSeries is one label-set's worth of histogram samples.
type histSeries struct {
	le       []float64 // bucket bounds in order of appearance
	buckets  []float64 // cumulative counts
	sum      *float64
	count    *float64
	sawInf   bool
	infValue float64
}

func checkHistogram(f Family) error {
	series := map[string]*histSeries{}
	order := []string{}
	get := func(labels map[string]string) *histSeries {
		key := seriesKey(labels)
		hs := series[key]
		if hs == nil {
			hs = &histSeries{}
			series[key] = hs
			order = append(order, key)
		}
		return hs
	}
	for _, s := range f.Samples {
		switch {
		case s.Name == f.Name+"_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			rest := make(map[string]string, len(s.Labels)-1)
			for k, v := range s.Labels {
				if k != "le" {
					rest[k] = v
				}
			}
			hs := get(rest)
			if le == "+Inf" {
				if hs.sawInf {
					return fmt.Errorf("duplicate +Inf bucket for %s", seriesKey(rest))
				}
				hs.sawInf = true
				hs.infValue = s.Value
				break
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("bad le %q: %v", le, err)
			}
			if hs.sawInf {
				return fmt.Errorf("finite bucket after +Inf for %s", seriesKey(rest))
			}
			hs.le = append(hs.le, bound)
			hs.buckets = append(hs.buckets, s.Value)
		case s.Name == f.Name+"_sum":
			hs := get(s.Labels)
			if hs.sum != nil {
				return fmt.Errorf("duplicate _sum for %s", seriesKey(s.Labels))
			}
			v := s.Value
			hs.sum = &v
		case s.Name == f.Name+"_count":
			hs := get(s.Labels)
			if hs.count != nil {
				return fmt.Errorf("duplicate _count for %s", seriesKey(s.Labels))
			}
			v := s.Value
			hs.count = &v
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for _, key := range order {
		hs := series[key]
		for i := 1; i < len(hs.le); i++ {
			if hs.le[i] <= hs.le[i-1] {
				return fmt.Errorf("series {%s}: le bounds not ascending (%g after %g)", key, hs.le[i], hs.le[i-1])
			}
			if hs.buckets[i] < hs.buckets[i-1] {
				return fmt.Errorf("series {%s}: cumulative bucket counts decrease at le=%g", key, hs.le[i])
			}
		}
		if !hs.sawInf {
			return fmt.Errorf("series {%s}: missing +Inf bucket", key)
		}
		if len(hs.buckets) > 0 && hs.infValue < hs.buckets[len(hs.buckets)-1] {
			return fmt.Errorf("series {%s}: +Inf bucket below last finite bucket", key)
		}
		if hs.count == nil {
			return fmt.Errorf("series {%s}: missing _count", key)
		}
		if hs.sum == nil {
			return fmt.Errorf("series {%s}: missing _sum", key)
		}
		//epoc:lint-ignore floatcmp bucket counts are exact integers rendered as floats; the text-format invariant is exact equality
		if hs.infValue != *hs.count {
			return fmt.Errorf("series {%s}: +Inf bucket %g != _count %g", key, hs.infValue, *hs.count)
		}
	}
	return nil
}
