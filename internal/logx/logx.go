// Package logx is the repo's structured logging layer: a thin,
// nil-safe wrapper over log/slog's JSON handler. One Logger is built
// at the process edge (cmd/epoc-serve's -log-level flag) and threaded
// down — through serve's request lifecycle and core's stage
// boundaries — as a plain field, the same way obs.Recorder and
// trace.Tracer travel.
//
// The wrapper exists for two properties slog alone does not give us:
//
//   - Nil safety, matching the obs/trace contract: every method on a
//     nil *Logger is a no-op, so instrumented code needs no
//     conditionals and a library user who never asks for logs pays a
//     single nil check.
//   - Correlation by convention: With("trace_id", ...) at request
//     admission and ("span", trace.Span.ID()) at stage boundaries put
//     the same identifiers on a log line, a /metrics scrape window,
//     and a Chrome trace, so the three can be joined during an
//     incident (DESIGN.md §15).
//
// logx is an import leaf: it takes IDs as plain strings rather than
// importing internal/trace, so every layer can carry a logger without
// new DAG edges.
package logx

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Logger emits JSON records to the writer it was built with. The zero
// value is not useful; nil is — all methods no-op.
type Logger struct {
	s *slog.Logger
}

// New returns a Logger writing one JSON object per line to w at the
// given minimum level.
func New(w io.Writer, level slog.Leveler) *Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return &Logger{s: slog.New(h)}
}

// ParseLevel maps a -log-level flag value to a slog.Level. "off" is
// handled by the caller (use a nil *Logger); this parser covers the
// emitting levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, error, or off)", s)
	}
}

// Enabled reports whether the logger emits anything at all — false
// only on nil. Hot paths use it to guard attr-heavy records, since
// building the variadic attr slice costs an allocation even when the
// receiver is nil:
//
//	if log.Enabled() {
//	    log.Info("stage done", "stage", name, "elapsed_ms", ms)
//	}
func (l *Logger) Enabled() bool {
	return l != nil
}

// With returns a Logger whose records all carry the given key/value
// attributes — the request-scoped pattern: one With("trace_id", id) at
// admission, then every downstream record is correlated for free. Nil
// receivers return nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Debug logs at LevelDebug; no-op on nil.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info logs at LevelInfo; no-op on nil.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at LevelWarn; no-op on nil.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at LevelError; no-op on nil.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}
