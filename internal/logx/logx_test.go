package logx

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"testing"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	dec := json.NewDecoder(buf)
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("decode log line: %v", err)
		}
		out = append(out, m)
	}
	return out
}

func TestJSONRecords(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo)
	l.Info("compile done", "stage", "zx", "elapsed_ms", 12.5)
	l.Debug("suppressed below level")
	l.Error("boom", "err", "synth failed")

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2: %v", len(lines), lines)
	}
	if lines[0]["msg"] != "compile done" || lines[0]["stage"] != "zx" || lines[0]["elapsed_ms"] != 12.5 {
		t.Fatalf("record: %v", lines[0])
	}
	if lines[1]["level"] != "ERROR" {
		t.Fatalf("record: %v", lines[1])
	}
}

func TestWithCarriesAttrs(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo).With("trace_id", "abc123")
	l.Info("queued")
	l.With("span", "s4").Info("stage done")

	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d records", len(lines))
	}
	for _, m := range lines {
		if m["trace_id"] != "abc123" {
			t.Fatalf("missing trace_id: %v", m)
		}
	}
	if lines[1]["span"] != "s4" {
		t.Fatalf("missing span: %v", lines[1])
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.With("k", "v") != nil {
		t.Fatal("With on nil must return nil")
	}
}

// The nil logger must match the obs/trace disabled-path budget:
// threading it through the pipeline costs nothing. Variadic attrs
// still build a []any at the call site, so hot paths guard attr-heavy
// records with Enabled() — this pins the bare-call and guarded paths.
func TestNilLoggerNoAllocs(t *testing.T) {
	var l *Logger
	allocs := testing.AllocsPerRun(1000, func() {
		l.Info("stage done")
		if l.Enabled() {
			l.Info("stage done", "stage", "zx")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil logger allocated %.1f times per op, want 0", allocs)
	}
}

func TestEnabled(t *testing.T) {
	var nilL *Logger
	if nilL.Enabled() {
		t.Fatal("nil logger must report disabled")
	}
	if !New(&bytes.Buffer{}, slog.LevelInfo).Enabled() {
		t.Fatal("real logger must report enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
}
