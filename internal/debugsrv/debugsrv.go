// Package debugsrv serves the live-debugging endpoints behind the
// CLIs' -debug-addr flag and mounted into epoc-serve's request mux:
// net/http/pprof's profiling handlers under /debug/pprof, plus the
// process's expvar page at /debug/vars with the attached obs
// recorder's counters published under "epoc". Watching a long compile
// then needs no instrumentation beyond the flag:
//
//	epoc -in circuit.qasm -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile
//	curl -s localhost:6060/debug/vars | jq .epoc
package debugsrv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"

	"epoc/internal/obs"
)

// recorder is the obs recorder whose counters the expvar export reads;
// swapped atomically so Serve can be called while compiles run.
var recorder atomic.Pointer[obs.Recorder]

func init() {
	// Publish once at package load: expvar.Publish panics on duplicate
	// names, and tests call Serve more than once per process.
	expvar.Publish("epoc", expvar.Func(func() interface{} {
		r := recorder.Load()
		if r == nil {
			return map[string]int64{}
		}
		snap := r.Snapshot()
		return snap.Counters
	}))
}

// Register mounts the debug endpoints on mux — /debug/pprof/* and
// /debug/vars — and attaches rec as the recorder behind the "epoc"
// expvar key (nil is allowed and publishes an empty map). The expvar
// binding is process-global: the last Register or Serve call wins,
// which matches the one-server-per-process deployment shape.
func Register(mux *http.ServeMux, rec *obs.Recorder) {
	recorder.Store(rec)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// Handler returns a standalone mux carrying only the debug endpoints,
// with rec attached as the expvar recorder.
func Handler(rec *obs.Recorder) http.Handler {
	mux := http.NewServeMux()
	Register(mux, rec)
	return mux
}

// Serve starts the debug HTTP server on addr, exposing /debug/pprof
// and /debug/vars (with rec's counters under "epoc"; nil is allowed
// and publishes an empty map). The listener is opened synchronously so
// address errors surface to the caller; the serve loop then runs in a
// background goroutine for the life of the process, matching the
// flag's use — there is deliberately no Stop. It returns the bound
// address, useful when addr held port 0.
func Serve(addr string, rec *obs.Recorder) (string, error) {
	h := Handler(rec)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugsrv: %w", err)
	}
	//epoc:lint-ignore goleak the serve loop intentionally runs for the life of the process; there is deliberately no Stop (see doc comment)
	go func() {
		// http.Serve only returns on listener failure; the process is
		// exiting then and there is nobody to hand the error to.
		_ = http.Serve(ln, h)
	}()
	return ln.Addr().String(), nil
}
