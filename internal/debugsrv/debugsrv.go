// Package debugsrv serves the live-debugging endpoints behind the
// CLIs' -debug-addr flag and mounted into epoc-serve's request mux:
// net/http/pprof's profiling handlers under /debug/pprof, the
// process's expvar page at /debug/vars with the attached obs
// recorder's counters published under "epoc", and the Prometheus
// exposition at /metrics (internal/metrics). Watching a long compile
// then needs no instrumentation beyond the flag:
//
//	epoc -in circuit.qasm -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile
//	curl -s localhost:6060/debug/vars | jq .epoc
//	curl -s localhost:6060/metrics
package debugsrv

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"epoc/internal/metrics"
	"epoc/internal/obs"
)

// Register mounts the debug endpoints on mux — /debug/pprof/*,
// /debug/vars, and /metrics — with rec as the recorder behind both the
// "epoc" expvar key and the Prometheus exposition (nil is allowed and
// publishes an empty map / empty exposition).
//
// The recorder binding is per-mux, not process-global: /debug/vars is
// served by a closure over rec rather than an expvar.Publish, so two
// servers in one process (the two-servers-one-store test shape) each
// export their own recorder instead of the last registration silently
// winning. The rest of the expvar page (memstats, cmdline, anything
// the process published) still renders through expvar.Do.
func Register(mux *http.ServeMux, rec *obs.Recorder) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/vars", varsHandler(rec))
	mux.Handle("/metrics", metrics.Handler(rec.Snapshot, nil))
}

// varsHandler renders the expvar page with rec's counters under the
// "epoc" key, mirroring expvar.Handler()'s output shape. Process-wide
// expvars still appear; a conflicting process-global "epoc" var (from
// an older binary that published one) is skipped in favor of the
// per-mux recorder.
func varsHandler(rec *obs.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if kv.Key == "epoc" {
				return
			}
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		counters := map[string]int64{}
		if snap := rec.Snapshot(); snap != nil {
			counters = snap.Counters
		}
		// Counters are int64 under string keys; marshaling cannot fail.
		b, _ := json.Marshal(counters)
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", "epoc", b)
		fmt.Fprintf(w, "\n}\n")
	}
}

// Handler returns a standalone mux carrying only the debug endpoints,
// with rec attached as the expvar recorder.
func Handler(rec *obs.Recorder) http.Handler {
	mux := http.NewServeMux()
	Register(mux, rec)
	return mux
}

// Serve starts the debug HTTP server on addr, exposing /debug/pprof,
// /debug/vars (with rec's counters under "epoc"; nil is allowed and
// publishes an empty map) and /metrics. The listener is opened
// synchronously so address errors surface to the caller; the serve
// loop then runs in a background goroutine for the life of the
// process, matching the flag's use — there is deliberately no Stop. It
// returns the bound address, useful when addr held port 0.
func Serve(addr string, rec *obs.Recorder) (string, error) {
	h := Handler(rec)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugsrv: %w", err)
	}
	//epoc:lint-ignore goleak the serve loop intentionally runs for the life of the process; there is deliberately no Stop (see doc comment)
	go func() {
		// http.Serve only returns on listener failure; the process is
		// exiting then and there is nobody to hand the error to.
		_ = http.Serve(ln, h)
	}()
	return ln.Addr().String(), nil
}
