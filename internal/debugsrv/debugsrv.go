// Package debugsrv serves the live-debugging endpoint behind the
// CLIs' -debug-addr flag: net/http/pprof's profiling handlers under
// /debug/pprof, plus the process's expvar page at /debug/vars with the
// attached obs recorder's counters published under "epoc". Watching a
// long compile then needs no instrumentation beyond the flag:
//
//	epoc -in circuit.qasm -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile
//	curl -s localhost:6060/debug/vars | jq .epoc
package debugsrv

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync/atomic"

	"epoc/internal/obs"
)

// recorder is the obs recorder whose counters the expvar export reads;
// swapped atomically so Serve can be called while compiles run.
var recorder atomic.Pointer[obs.Recorder]

func init() {
	// Publish once at package load: expvar.Publish panics on duplicate
	// names, and tests call Serve more than once per process.
	expvar.Publish("epoc", expvar.Func(func() interface{} {
		r := recorder.Load()
		if r == nil {
			return map[string]int64{}
		}
		snap := r.Snapshot()
		return snap.Counters
	}))
}

// Serve starts the debug HTTP server on addr, exposing /debug/pprof
// and /debug/vars (with rec's counters under "epoc"; nil is allowed
// and publishes an empty map). The listener is opened synchronously so
// address errors surface to the caller; the serve loop then runs in a
// background goroutine for the life of the process, matching the
// flag's use — there is deliberately no Stop. It returns the bound
// address, useful when addr held port 0.
func Serve(addr string, rec *obs.Recorder) (string, error) {
	recorder.Store(rec)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugsrv: %w", err)
	}
	go func() {
		// http.Serve only returns on listener failure; the process is
		// exiting then and there is nobody to hand the error to.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
