package debugsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"epoc/internal/obs"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServe(t *testing.T) {
	r := obs.New()
	r.Add("compiles", 3)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	var vars struct {
		Epoc map[string]int64 `json:"epoc"`
	}
	if err := json.Unmarshal(get(t, fmt.Sprintf("http://%s/debug/vars", addr)), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Epoc["compiles"] != 3 {
		t.Fatalf("expvar epoc.compiles = %d, want 3", vars.Epoc["compiles"])
	}

	// Counters published live: later recording shows without re-Serve.
	r.Add("compiles", 2)
	if err := json.Unmarshal(get(t, fmt.Sprintf("http://%s/debug/vars", addr)), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Epoc["compiles"] != 5 {
		t.Fatalf("expvar epoc.compiles = %d after update, want 5", vars.Epoc["compiles"])
	}

	if body := get(t, fmt.Sprintf("http://%s/debug/pprof/cmdline", addr)); len(body) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", nil); err == nil {
		t.Fatal("no error for an unbindable address")
	}
}
