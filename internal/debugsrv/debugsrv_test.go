package debugsrv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"epoc/internal/metrics"
	"epoc/internal/obs"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServe(t *testing.T) {
	r := obs.New()
	r.Add("compiles", 3)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}

	var vars struct {
		Epoc map[string]int64 `json:"epoc"`
	}
	if err := json.Unmarshal(get(t, fmt.Sprintf("http://%s/debug/vars", addr)), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Epoc["compiles"] != 3 {
		t.Fatalf("expvar epoc.compiles = %d, want 3", vars.Epoc["compiles"])
	}

	// Counters published live: later recording shows without re-Serve.
	r.Add("compiles", 2)
	if err := json.Unmarshal(get(t, fmt.Sprintf("http://%s/debug/vars", addr)), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Epoc["compiles"] != 5 {
		t.Fatalf("expvar epoc.compiles = %d after update, want 5", vars.Epoc["compiles"])
	}

	if body := get(t, fmt.Sprintf("http://%s/debug/pprof/cmdline", addr)); len(body) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", nil); err == nil {
		t.Fatal("no error for an unbindable address")
	}
}

// TestTwoServersOwnRecorders pins the per-mux recorder binding: two
// debug servers in one process (the two-servers-one-store shape from
// internal/serve) must each export their own recorder rather than the
// last registration winning the process-global expvar key.
func TestTwoServersOwnRecorders(t *testing.T) {
	ra, rb := obs.New(), obs.New()
	ra.Add("compiles", 1)
	rb.Add("compiles", 100)

	addrA, err := Serve("127.0.0.1:0", ra)
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := Serve("127.0.0.1:0", rb)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		addr string
		want int64
	}{{addrA, 1}, {addrB, 100}} {
		var vars struct {
			Epoc map[string]int64 `json:"epoc"`
		}
		if err := json.Unmarshal(get(t, fmt.Sprintf("http://%s/debug/vars", tc.addr)), &vars); err != nil {
			t.Fatal(err)
		}
		if vars.Epoc["compiles"] != tc.want {
			t.Fatalf("server %s exported compiles=%d, want %d", tc.addr, vars.Epoc["compiles"], tc.want)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	r := obs.New()
	r.Add("synthcache/hit", 4)
	r.Span("stage/zx").End()
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	body := string(get(t, fmt.Sprintf("http://%s/metrics", addr)))
	fams, err := metrics.Parse(body)
	if err != nil {
		t.Fatalf("strict parser rejected /metrics: %v\n%s", err, body)
	}
	found := map[string]bool{}
	for _, f := range fams {
		found[f.Name] = true
	}
	if !found["epoc_synthcache_hits_total"] || !found["epoc_stage_seconds"] {
		t.Fatalf("missing expected families in %v", found)
	}
}

func TestNilRecorder(t *testing.T) {
	addr, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Epoc map[string]int64 `json:"epoc"`
	}
	if err := json.Unmarshal(get(t, fmt.Sprintf("http://%s/debug/vars", addr)), &vars); err != nil {
		t.Fatal(err)
	}
	if len(vars.Epoc) != 0 {
		t.Fatalf("nil recorder exported %v", vars.Epoc)
	}
	if body := get(t, fmt.Sprintf("http://%s/metrics", addr)); len(body) != 0 {
		t.Fatalf("nil recorder /metrics = %q, want empty", body)
	}
}
