//go:build !unix

package store

// lockDir is a no-op on platforms without flock. Correctness does not
// depend on it — records are content-addressed and written via
// temp-file + rename — the lock only serializes concurrent flushers'
// temp-file churn on platforms that support it.
func lockDir(dir string) (func(), error) {
	return func() {}, nil
}
