//go:build unix

package store

import (
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/.lock, serializing
// flushes across processes sharing one namespace directory. Content
// addressing already makes concurrent writes of identical records
// benign; the lock closes the remaining window where two processes
// interleave temp-file churn, and is the single-writer guard the serve
// layer's shared-store deployments rely on. The returned func releases
// the lock.
func lockDir(dir string) (func(), error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		_ = f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor releases the flock even if the explicit
		// unlock failed, so neither error can wedge the directory.
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
