package store

import (
	"strings"
	"testing"

	"epoc/internal/gate"
)

// FuzzStoreDecode throws arbitrary bytes at the record decoder: it
// must never panic, and anything it accepts must be a fully-formed
// record the caches could import — the same no-poisoning contract the
// corruption tests check deterministically. Registered in `make fuzz`
// and the CI fuzz step next to FuzzParse.
func FuzzStoreDecode(f *testing.F) {
	// Seeds: one valid record of each kind, plus structured damage the
	// deterministic tests already know is interesting.
	up, p := testPulse(0)
	if _, data, err := EncodePulseRecord(up, p); err == nil {
		f.Add(data)
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-2] ^= 1
		f.Add(flipped)
		f.Add([]byte(strings.Replace(string(data), Magic+" 1 ", Magic+" 2 ", 1)))
	}
	ucx := gate.New(gate.CX).Matrix()
	if _, data, err := EncodeSynthRecord(ucx, cxCircuit(), true); err == nil {
		f.Add(data)
	}
	if _, data, err := EncodeSynthRecord(ucx, nil, false); err == nil {
		f.Add(data)
	}
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + " 1 pulse 0 e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		// Accepted records must uphold the decoder's invariants.
		if rec.U == nil || rec.U.Rows != rec.U.Cols || rec.U.Rows > maxDim {
			t.Fatalf("accepted record with bad unitary: %+v", rec)
		}
		switch rec.Kind {
		case KindPulse:
			if rec.Pulse == nil || len(rec.Pulse.Label) > maxLabelLen {
				t.Fatalf("accepted malformed pulse record: %+v", rec)
			}
		case KindSynth:
			if rec.Circ != nil {
				for _, op := range rec.Circ.Ops {
					if _, fixed := gate.Registry[op.G.Kind]; !fixed {
						t.Fatalf("accepted circuit with unregistered gate %q", op.G.Kind)
					}
				}
			}
		default:
			t.Fatalf("accepted unknown kind %q", rec.Kind)
		}
	})
}
