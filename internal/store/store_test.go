package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/pulse"
	"epoc/internal/synth"
)

// testPulse builds a distinct (unitary, pulse) pair per index: RX
// rotations at distinct angles so no two entries match up to phase.
func testPulse(i int) (*linalg.Matrix, *pulse.Pulse) {
	theta := 0.1 + 0.2*float64(i)
	u := gate.New(gate.RX, theta).Matrix()
	return u, &pulse.Pulse{
		Label:    fmt.Sprintf("rx-%d", i),
		Duration: 10 + float64(i),
		Fidelity: 0.999,
		Slots:    3,
		Amps:     [][]float64{{0.1, 0}, {0.2 + theta, 0}, {0.1, 0}},
	}
}

func cxCircuit() *circuit.Circuit {
	c := circuit.New(2)
	c.Append(gate.New(gate.CX), 0, 1)
	return c
}

func TestPulseRecordRoundTrip(t *testing.T) {
	u, p := testPulse(1)
	name, data, err := EncodePulseRecord(u, p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "p-") || !strings.HasSuffix(name, ".rec") {
		t.Fatalf("pulse record name %q", name)
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindPulse {
		t.Fatalf("kind %q", rec.Kind)
	}
	if d := linalg.FrobeniusDistance(u, rec.U); d != 0 {
		t.Fatalf("unitary did not round-trip exactly: distance %g", d)
	}
	if rec.Pulse.Label != p.Label || rec.Pulse.Duration != p.Duration ||
		rec.Pulse.Fidelity != p.Fidelity || rec.Pulse.Slots != p.Slots {
		t.Fatalf("pulse fields did not round-trip: %+v vs %+v", rec.Pulse, p)
	}
	for i := range p.Amps {
		for j := range p.Amps[i] {
			if rec.Pulse.Amps[i][j] != p.Amps[i][j] {
				t.Fatalf("amp [%d][%d] did not round-trip", i, j)
			}
		}
	}
	// Content addressing: identical content frames to identical name+bytes.
	name2, data2, err := EncodePulseRecord(u, p)
	if err != nil || name2 != name || string(data2) != string(data) {
		t.Fatalf("encoding is not deterministic: %v %q vs %q", err, name2, name)
	}
}

func TestSynthRecordRoundTrip(t *testing.T) {
	u := gate.New(gate.CX).Matrix()
	circ := cxCircuit()
	name, data, err := EncodeSynthRecord(u, circ, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(name, "s-") {
		t.Fatalf("synth record name %q", name)
	}
	rec, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != KindSynth || !rec.Ok || rec.Circ == nil {
		t.Fatalf("record: %+v", rec)
	}
	if rec.Circ.NumQubits != 2 || rec.Circ.Len() != 1 || rec.Circ.Ops[0].G.Kind != gate.CX {
		t.Fatalf("circuit did not round-trip: %+v", rec.Circ)
	}

	// A failed synthesis with no circuit is also persistable: the record
	// keeps the negative result so a restart skips the doomed QSearch.
	_, data, err = EncodeSynthRecord(u, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Circ != nil || rec.Ok {
		t.Fatalf("nil-circuit record: %+v", rec)
	}
}

func TestSynthRecordRejectsMatrixGates(t *testing.T) {
	u := gate.New(gate.CX).Matrix()
	c := circuit.New(2)
	c.Append(gate.NewUnitary(u), 0, 1)
	if _, _, err := EncodeSynthRecord(u, c, true); err == nil {
		t.Fatal("matrix-carrying gate should not encode")
	}
}

func TestStoreRoundTripThroughDisk(t *testing.T) {
	root := t.TempDir()
	s1, err := Open(root, "ns")
	if err != nil {
		t.Fatal(err)
	}
	lib := pulse.NewLibrary(true)
	for i := 0; i < 4; i++ {
		u, p := testPulse(i)
		lib.Store(u, p)
	}
	cache := synth.NewCache()
	ucx := gate.New(gate.CX).Matrix()
	if _, _, _, err := cache.GetOrCompute(nil, ucx, func() (*circuit.Circuit, bool, error) {
		return cxCircuit(), true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := s1.HarvestLibrary(lib); n != 4 {
		t.Fatalf("harvested %d pulses, want 4", n)
	}
	if n := s1.HarvestSynthCache(cache); n != 1 {
		t.Fatalf("harvested %d synths, want 1", n)
	}
	// Idempotent: a second harvest of the same caches stages nothing.
	if n := s1.HarvestLibrary(lib) + s1.HarvestSynthCache(cache); n != 0 {
		t.Fatalf("re-harvest staged %d records", n)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(root, "ns")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if p, s := s2.Len(); p != 4 || s != 1 {
		t.Fatalf("reopened store holds %d pulses, %d synths", p, s)
	}
	lib2 := pulse.NewLibrary(true)
	if n := s2.WarmLibrary(lib2); n != 4 {
		t.Fatalf("warmed %d pulses, want 4", n)
	}
	// Warming is idempotent too: everything is already present.
	if n := s2.WarmLibrary(lib2); n != 0 {
		t.Fatalf("re-warm added %d", n)
	}
	for i := 0; i < 4; i++ {
		u, p := testPulse(i)
		got, ok := lib2.Lookup(u)
		if !ok {
			t.Fatalf("pulse %d missing after warm", i)
		}
		if got.Label != p.Label || got.Duration != p.Duration {
			t.Fatalf("pulse %d: got %+v want %+v", i, got, p)
		}
	}
	cache2 := synth.NewCache()
	if n := s2.WarmSynthCache(cache2); n != 1 {
		t.Fatalf("warmed %d synths, want 1", n)
	}
	circ, ok, st, err := cache2.GetOrCompute(nil, ucx, func() (*circuit.Circuit, bool, error) {
		t.Fatal("warm cache should not recompute")
		return nil, false, nil
	})
	if err != nil || !ok || st != synth.CacheHit || circ.Len() != 1 {
		t.Fatalf("warm cache lookup: ok=%v st=%v err=%v", ok, st, err)
	}
	// Warming never counts as cache traffic beyond this one hit.
	if c := s2.Counters(); c.PulseLoaded != 4 || c.SynthLoaded != 1 || c.Corrupt != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// corruptionCase writes one damaged file into a store directory and
// says how it should be accounted at Open.
type corruptionCase struct {
	name string
	file string
	data func(valid []byte) []byte
	// loaded says whether the file should still decode (only the stray
	// .tmp case: ignored entirely, not counted corrupt).
	ignored bool
}

func TestOpenSkipsCorruptRecords(t *testing.T) {
	u, p := testPulse(0)
	_, valid, err := EncodePulseRecord(u, p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []corruptionCase{
		{name: "truncated", file: "p-" + strings.Repeat("a", 32) + ".rec",
			data: func(v []byte) []byte { return v[:len(v)/2] }},
		{name: "bitflip", file: "p-" + strings.Repeat("b", 32) + ".rec",
			data: func(v []byte) []byte {
				c := append([]byte(nil), v...)
				c[len(c)-3] ^= 0x40 // flip a payload bit: checksum must catch it
				return c
			}},
		{name: "wrong-version", file: "p-" + strings.Repeat("c", 32) + ".rec",
			data: func(v []byte) []byte {
				return []byte(strings.Replace(string(v), Magic+" 1 ", Magic+" 99 ", 1))
			}},
		{name: "empty", file: "p-" + strings.Repeat("d", 32) + ".rec",
			data: func([]byte) []byte { return nil }},
		{name: "junk", file: "p-" + strings.Repeat("e", 32) + ".rec",
			data: func([]byte) []byte { return []byte("not a record at all") }},
		{name: "stray-tmp", file: ".tmp-p-crashed123", ignored: true,
			data: func(v []byte) []byte { return v[:10] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			dir := filepath.Join(root, "ns")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			// One valid record beside the damaged file: the good one must
			// load, the bad one must be skipped, Open must not fail.
			name, data, err := EncodePulseRecord(u, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, tc.file), tc.data(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(root, "ns")
			if err != nil {
				t.Fatalf("Open failed on a corrupt store: %v", err)
			}
			defer func() { _ = s.Close() }()
			pn, _ := s.Len()
			if pn != 1 {
				t.Fatalf("loaded %d pulses, want 1 (the valid record)", pn)
			}
			wantCorrupt := int64(1)
			if tc.ignored {
				wantCorrupt = 0
			}
			if c := s.Counters(); c.Corrupt != wantCorrupt {
				t.Fatalf("corrupt count %d, want %d", c.Corrupt, wantCorrupt)
			}
			// No poisoning: the library warmed from this store holds only
			// the valid pulse, with its exact bytes.
			lib := pulse.NewLibrary(true)
			if n := s.WarmLibrary(lib); n != 1 {
				t.Fatalf("warmed %d, want 1", n)
			}
			got, ok := lib.Lookup(u)
			if !ok || got.Label != p.Label || got.Duration != p.Duration {
				t.Fatalf("valid pulse poisoned or missing: ok=%v got=%+v", ok, got)
			}
		})
	}
}

func TestDecodeRecordRejects(t *testing.T) {
	u, p := testPulse(0)
	_, valid, err := EncodePulseRecord(u, p)
	if err != nil {
		t.Fatal(err)
	}
	header := string(valid[:strings.IndexByte(string(valid), '\n')+1])
	payload := string(valid[len(header):])
	reframe := func(payload string) []byte {
		_, data, err := frameForTest(KindPulse, []byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"empty":            nil,
		"no-newline":       []byte(strings.Repeat("x", 200)),
		"bad-magic":        []byte(strings.Replace(header, Magic, "NOTASTORE", 1) + payload),
		"bad-kind":         []byte(strings.Replace(header, " pulse ", " goose ", 1) + payload),
		"short-header":     []byte(Magic + " 1 pulse\n" + payload),
		"length-lies":      []byte(strings.Replace(header, fmt.Sprintf(" %d ", len(payload)), fmt.Sprintf(" %d ", len(payload)+1), 1) + payload),
		"huge-amp":         reframe(strings.Replace(payload, `"amps":[[`, `"amps":[[1e999,`, 1)),
		"unknown-field":    reframe(strings.Replace(payload, `"label"`, `"labell"`, 1)),
		"trailing-garbage": reframe(payload + "{}"),
		"bad-fidelity":     reframe(strings.Replace(payload, `"fidelity":0.999`, `"fidelity":2.5`, 1)),
	}
	for name, data := range cases {
		if _, err := DecodeRecord(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// The unmodified record still decodes (the mutations above, not the
	// framing helper, are what the cases reject).
	if _, err := DecodeRecord(valid); err != nil {
		t.Fatalf("control: %v", err)
	}
}

// frameForTest re-frames a (possibly damaged) payload with a correct
// checksum, so payload-level validation is what rejects it.
func frameForTest(kind Kind, payload []byte) (string, []byte, error) {
	return frame(kind, payload)
}

func TestDecodeSynthRejectsBadOps(t *testing.T) {
	u := gate.New(gate.CX).Matrix()
	_, valid, err := EncodeSynthRecord(u, cxCircuit(), true)
	if err != nil {
		t.Fatal(err)
	}
	header := string(valid[:strings.IndexByte(string(valid), '\n')+1])
	payload := string(valid[len(header):])
	mutations := map[string]func(string) string{
		"unknown-gate": func(p string) string { return strings.Replace(p, `"kind":"cx"`, `"kind":"zz9"`, 1) },
		"bad-arity":    func(p string) string { return strings.Replace(p, `"qubits":[0,1]`, `"qubits":[0]`, 1) },
		"dup-qubits":   func(p string) string { return strings.Replace(p, `"qubits":[0,1]`, `"qubits":[1,1]`, 1) },
		"out-of-range": func(p string) string { return strings.Replace(p, `"qubits":[0,1]`, `"qubits":[0,7]`, 1) },
		"bad-width":    func(p string) string { return strings.Replace(p, `"qubits":2,`, `"qubits":99,`, 1) },
	}
	for name, mut := range mutations {
		mp := mut(payload)
		if mp == payload {
			t.Fatalf("%s: mutation did not apply", name)
		}
		_, data, err := frame(KindSynth, []byte(mp))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeRecord(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestConcurrentStoreHammer drives goroutines that store, harvest,
// flush, reopen and warm through one shared directory. Run with -race;
// correctness check is that a final reopen sees every record exactly
// once and every pulse survives byte-identical.
func TestConcurrentStoreHammer(t *testing.T) {
	root := t.TempDir()
	const writers = 8
	const perWriter = 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := Open(root, "ns")
			if err != nil {
				t.Error(err)
				return
			}
			lib := pulse.NewLibrary(true)
			for i := 0; i < perWriter; i++ {
				// Overlapping index ranges: half of each writer's pulses
				// collide with a neighbour's — content addressing must
				// dedupe them on disk.
				u, p := testPulse(w*perWriter/2 + i)
				lib.Store(u, p)
				s.HarvestLibrary(lib)
				if err := s.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
			// Concurrent readers: reopen mid-hammer and warm a fresh
			// library; whatever is visible must decode cleanly.
			r, err := Open(root, "ns")
			if err != nil {
				t.Error(err)
				return
			}
			if c := r.Counters(); c.Corrupt != 0 {
				t.Errorf("reader saw %d corrupt records", c.Corrupt)
			}
			r.WarmLibrary(pulse.NewLibrary(true))
			_ = r.Close()
			_ = s.Close()
		}(w)
	}
	wg.Wait()

	final, err := Open(root, "ns")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = final.Close() }()
	if c := final.Counters(); c.Corrupt != 0 {
		t.Fatalf("final open: %d corrupt records", c.Corrupt)
	}
	// Distinct pulse indices written: 0 .. (writers-1)*perWriter/2 + perWriter - 1.
	want := (writers-1)*perWriter/2 + perWriter
	pn, _ := final.Len()
	if pn != want {
		t.Fatalf("final store holds %d pulses, want %d", pn, want)
	}
	lib := pulse.NewLibrary(true)
	if n := final.WarmLibrary(lib); n != want {
		t.Fatalf("warmed %d, want %d", n, want)
	}
	for i := 0; i < want; i++ {
		u, p := testPulse(i)
		got, ok := lib.Lookup(u)
		if !ok || got.Label != p.Label {
			t.Fatalf("pulse %d lost or corrupted (ok=%v)", i, ok)
		}
	}
}

func TestClosedStoreSemantics(t *testing.T) {
	s, err := Open(t.TempDir(), "ns")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close is not idempotent:", err)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush after Close should error")
	}
	lib := pulse.NewLibrary(true)
	u, p := testPulse(0)
	lib.Store(u, p)
	if n := s.HarvestLibrary(lib); n != 0 {
		t.Fatalf("harvest after Close staged %d", n)
	}
}

func TestNamespace(t *testing.T) {
	a := Namespace(map[string]string{"mode": "full", "seed": "1"})
	b := Namespace(map[string]string{"seed": "1", "mode": "full"})
	if a != b {
		t.Fatalf("namespace depends on map order: %q vs %q", a, b)
	}
	c := Namespace(map[string]string{"mode": "full", "seed": "2"})
	if a == c {
		t.Fatal("different configs share a namespace")
	}
	if !strings.HasPrefix(a, fmt.Sprintf("v%d-", CodecVersion)) {
		t.Fatalf("namespace %q does not carry the codec version", a)
	}
	if strings.ContainsAny(a, "/\\ ") {
		t.Fatalf("namespace %q is not a clean path segment", a)
	}
}

func TestEncodeBounds(t *testing.T) {
	u, p := testPulse(0)
	long := *p
	long.Label = strings.Repeat("x", maxLabelLen+1)
	if _, _, err := EncodePulseRecord(u, &long); err == nil {
		t.Fatal("over-long label should not encode")
	}
	if _, _, err := EncodePulseRecord(nil, p); err == nil {
		t.Fatal("nil unitary should not encode")
	}
	if _, _, err := EncodePulseRecord(u, nil); err == nil {
		t.Fatal("nil pulse should not encode")
	}
	inf := *p
	inf.Amps = [][]float64{{math.Inf(1)}}
	_, data, err := EncodePulseRecord(u, &inf)
	if err == nil {
		// Encoding may succeed only if decode then rejects it; JSON
		// cannot represent Inf, so in practice Marshal fails first.
		if _, derr := DecodeRecord(data); derr == nil {
			t.Fatal("non-finite amplitude survived a round trip")
		}
	}
}
