package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"epoc/internal/pulse"
	"epoc/internal/report"
	"epoc/internal/synth"
)

// Namespace derives a store namespace key from a flattened config map
// of every knob that shapes stored artifacts (hardware-model physics,
// QOC and synthesis tuning — see core.StoreNamespace for the canonical
// set). It reuses the manifest's config-fingerprint machinery so the
// store, the run manifests, and the bench gate all agree on what "same
// config" means. The codec version is folded in, so a format bump
// lands in a fresh directory instead of misreading old records.
func Namespace(config map[string]string) string {
	m := &report.Manifest{Strategy: "store", Config: config}
	return fmt.Sprintf("v%d-%.16s", CodecVersion, m.Fingerprint())
}

// Counters is a snapshot of a store's accounting.
type Counters struct {
	PulseLoaded int64 // pulse records decoded at Open
	SynthLoaded int64 // synth records decoded at Open
	Corrupt     int64 // files skipped at Open: truncated, bit-flipped, wrong version, not a record

	WarmPulses int64 // entries imported into a pulse.Library by WarmLibrary
	WarmSynth  int64 // entries imported into a synth.Cache by WarmSynthCache

	PulseHarvested int64 // new pulse records staged by HarvestLibrary
	SynthHarvested int64 // new synth records staged by HarvestSynthCache
	Skipped        int64 // cache entries a Harvest could not encode (never an error: they just stay in-memory)
	Flushed        int64 // records written to disk over the store's lifetime
}

// Store is one opened namespace directory: the records loaded from it,
// plus records harvested from in-memory caches and not yet flushed.
// All methods are goroutine-safe. On-disk safety comes from three
// layers: records are content-addressed (concurrent writers of the
// same entry write identical bytes to the same name), writes go to a
// temp file renamed into place (a reader never sees a half-written
// record), and Flush holds an advisory flock on the directory (two
// processes flushing concurrently serialize instead of interleaving).
type Store struct {
	root string
	ns   string
	dir  string

	mu       sync.Mutex
	pulses   []*Record         // loaded pulse records, name-sorted (Warm* order)
	synths   []*Record         // loaded synth records, name-sorted
	pending  map[string][]byte // staged records: filename -> framed bytes
	onDisk   map[string]bool   // filenames known to exist with valid content
	counters Counters
	closed   bool
}

// Open loads (or creates) the namespace directory under root. Corrupt
// or foreign files are counted and skipped — Open never fails because
// of what a record contains, only on I/O errors reaching the directory
// itself.
func Open(root, namespace string) (*Store, error) {
	if root == "" || namespace == "" {
		return nil, fmt.Errorf("store: root and namespace are required")
	}
	dir := filepath.Join(root, namespace)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		root:    root,
		ns:      namespace,
		dir:     dir,
		pending: map[string][]byte{},
		onDisk:  map[string]bool{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rec") {
			continue // lock file, temp files from a crashed writer, strangers
		}
		names = append(names, e.Name())
	}
	sort.Strings(names) // deterministic load (and Warm*) order
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			s.counters.Corrupt++
			continue
		}
		rec, err := DecodeRecord(data)
		if err != nil {
			s.counters.Corrupt++
			continue
		}
		s.onDisk[name] = true
		switch rec.Kind {
		case KindPulse:
			s.pulses = append(s.pulses, rec)
			s.counters.PulseLoaded++
		case KindSynth:
			s.synths = append(s.synths, rec)
			s.counters.SynthLoaded++
		}
	}
	return s, nil
}

// Dir returns the namespace directory this store reads and writes.
func (s *Store) Dir() string { return s.dir }

// Namespace returns the namespace key the store was opened under.
func (s *Store) Namespace() string { return s.ns }

// Len returns the number of records loaded at Open.
func (s *Store) Len() (pulses, synths int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pulses), len(s.synths)
}

// Counters snapshots the store's accounting.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// WarmLibrary imports every loaded pulse record into l, returning how
// many were added (records already present — by the library's own
// verified matching — are skipped, so warming is idempotent).
func (s *Store) WarmLibrary(l *pulse.Library) int {
	if s == nil || l == nil {
		return 0
	}
	s.mu.Lock()
	recs := s.pulses
	s.mu.Unlock()
	added := 0
	for _, r := range recs {
		if l.Import(r.U, r.Pulse) {
			added++
		}
	}
	s.mu.Lock()
	s.counters.WarmPulses += int64(added)
	s.mu.Unlock()
	return added
}

// WarmSynthCache imports every loaded synth record into c.
func (s *Store) WarmSynthCache(c *synth.Cache) int {
	if s == nil || c == nil {
		return 0
	}
	s.mu.Lock()
	recs := s.synths
	s.mu.Unlock()
	added := 0
	for _, r := range recs {
		if c.Import(r.U, r.Circ, r.Ok) {
			added++
		}
	}
	s.mu.Lock()
	s.counters.WarmSynth += int64(added)
	s.mu.Unlock()
	return added
}

// HarvestLibrary stages every library entry not already persisted,
// returning how many new records were staged. Entries the codec cannot
// represent are counted Skipped and left in memory only.
func (s *Store) HarvestLibrary(l *pulse.Library) int {
	if s == nil || l == nil {
		return 0
	}
	entries := l.Export()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	staged := 0
	for _, e := range entries {
		name, data, err := EncodePulseRecord(e.U, e.P)
		if err != nil {
			s.counters.Skipped++
			continue
		}
		if s.onDisk[name] || s.pending[name] != nil {
			continue
		}
		s.pending[name] = data
		staged++
	}
	s.counters.PulseHarvested += int64(staged)
	return staged
}

// HarvestSynthCache stages every completed synthesis-cache entry not
// already persisted.
func (s *Store) HarvestSynthCache(c *synth.Cache) int {
	if s == nil || c == nil {
		return 0
	}
	entries := c.Export()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	staged := 0
	for _, e := range entries {
		name, data, err := EncodeSynthRecord(e.U, e.Circ, e.Ok)
		if err != nil {
			s.counters.Skipped++
			continue
		}
		if s.onDisk[name] || s.pending[name] != nil {
			continue
		}
		s.pending[name] = data
		staged++
	}
	s.counters.SynthHarvested += int64(staged)
	return staged
}

// Flush writes every staged record to disk: temp file, then an atomic
// rename into the content-addressed name. Callers invoke it after each
// compile (the incremental flush — content addressing makes re-flushing
// an unchanged cache a no-op) and via Close. An advisory flock on the
// namespace directory serializes flushes from concurrent processes.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// flushLocked does the staged-record write-out. The caller must hold
// s.mu.
func (s *Store) flushLocked() error {
	if s.closed {
		return fmt.Errorf("store: flush on closed store")
	}
	if len(s.pending) == 0 {
		return nil
	}
	unlock, err := lockDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: lock %s: %w", s.dir, err)
	}
	defer unlock()
	names := make([]string, 0, len(s.pending))
	for name := range s.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeAtomic(s.dir, name, s.pending[name]); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.onDisk[name] = true
		delete(s.pending, name)
		s.counters.Flushed++
	}
	return nil
}

// writeAtomic lands data under dir/name via a temp file and rename, so
// a crash mid-write leaves a ".tmp-" stray (ignored by Open) and never
// a half-written record.
func writeAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-"+name)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Close flushes staged records and marks the store closed; further
// flushes error and further harvests are dropped. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	return err
}
