// Package store persists the pulse library and synthesis cache to
// disk so a restarted process starts warm instead of repaying the full
// QOC bill — the AccQOC amortization argument extended across process
// lifetimes. Records are content-addressed (the filename is derived
// from the payload hash, so concurrent writers of the same entry are
// idempotent), checksummed (a corrupted record is skipped, never
// loaded), and namespaced by a hardware-model + config fingerprint
// (a config change lands in a fresh namespace directory, which is the
// whole invalidation story — see DESIGN.md §12).
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"epoc/internal/circuit"
	"epoc/internal/gate"
	"epoc/internal/linalg"
	"epoc/internal/pulse"
)

// Magic opens every record file; a file without it is not a record.
const Magic = "EPOCSTORE"

// CodecVersion is the record format version. Records written by a
// different version are skipped at load (counted corrupt), and the
// version is also folded into the namespace key, so a format change
// never misreads old bytes.
const CodecVersion = 1

// Kind tags what a record holds.
type Kind string

// Record kinds.
const (
	KindPulse Kind = "pulse" // one pulse.Library entry: unitary + optimized pulse
	KindSynth Kind = "synth" // one synth.Cache entry: unitary + synthesized circuit
)

// Decode/validation bounds. They exist so a corrupted or adversarial
// record can never balloon memory or construct an object the rest of
// the pipeline would choke on: decode rejects, load skips, caches stay
// clean.
const (
	maxPayloadBytes = 16 << 20 // one record's JSON payload
	maxDim          = 64       // unitary dimension (6 qubits; blocks are ≤3)
	maxSlots        = 1 << 20  // pulse time slots
	maxControls     = 64       // amplitude channels per slot
	maxOps          = 1 << 16  // gates in a synthesized circuit
	maxLabelLen     = 128      // pulse label length
)

// Record is one decoded store entry.
type Record struct {
	Kind Kind
	U    *linalg.Matrix // the unitary the entry is keyed by (verified on import)

	Pulse *pulse.Pulse // KindPulse

	Circ *circuit.Circuit // KindSynth (nil when the synthesis had no usable circuit)
	Ok   bool             // KindSynth: whether the synthesis reached its threshold
}

// matrixJSON is the wire form of a complex matrix: parallel real and
// imaginary slices, row-major. Only square power-of-two unitaries are
// valid on decode.
type matrixJSON struct {
	Rows int       `json:"rows"`
	Re   []float64 `json:"re"`
	Im   []float64 `json:"im"`
}

type pulsePayload struct {
	U        matrixJSON  `json:"u"`
	Label    string      `json:"label"`
	Duration float64     `json:"duration_ns"`
	Fidelity float64     `json:"fidelity"`
	Slots    int         `json:"slots"`
	Amps     [][]float64 `json:"amps,omitempty"`
}

type opJSON struct {
	Kind   string    `json:"kind"`
	Params []float64 `json:"params,omitempty"`
	Qubits []int     `json:"qubits"`
}

type synthPayload struct {
	U      matrixJSON `json:"u"`
	Qubits int        `json:"qubits"`
	Ops    []opJSON   `json:"ops"`
	Ok     bool       `json:"ok"`
}

func encodeMatrix(u *linalg.Matrix) matrixJSON {
	m := matrixJSON{Rows: u.Rows, Re: make([]float64, len(u.Data)), Im: make([]float64, len(u.Data))}
	for i, v := range u.Data {
		m.Re[i] = real(v)
		m.Im[i] = imag(v)
	}
	return m
}

func decodeMatrix(m matrixJSON) (*linalg.Matrix, error) {
	if m.Rows < 2 || m.Rows > maxDim || m.Rows&(m.Rows-1) != 0 {
		return nil, fmt.Errorf("store: matrix dimension %d not a power of two in [2,%d]", m.Rows, maxDim)
	}
	n := m.Rows * m.Rows
	if len(m.Re) != n || len(m.Im) != n {
		return nil, fmt.Errorf("store: matrix data length %d/%d, want %d", len(m.Re), len(m.Im), n)
	}
	u := linalg.NewMatrix(m.Rows, m.Rows)
	for i := 0; i < n; i++ {
		if !finite(m.Re[i]) || !finite(m.Im[i]) {
			return nil, fmt.Errorf("store: non-finite matrix entry %d", i)
		}
		u.Data[i] = complex(m.Re[i], m.Im[i])
	}
	return u, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// EncodePulseRecord frames one pulse-library entry as a record. The
// returned name is the record's content-addressed filename.
func EncodePulseRecord(u *linalg.Matrix, p *pulse.Pulse) (name string, data []byte, err error) {
	if u == nil || p == nil {
		return "", nil, fmt.Errorf("store: nil pulse entry")
	}
	if u.Rows != u.Cols || u.Rows > maxDim {
		return "", nil, fmt.Errorf("store: unsupported unitary %dx%d", u.Rows, u.Cols)
	}
	if len(p.Amps) > maxSlots || len(p.Label) > maxLabelLen {
		return "", nil, fmt.Errorf("store: pulse exceeds codec bounds")
	}
	payload, err := json.Marshal(pulsePayload{
		U:        encodeMatrix(u),
		Label:    p.Label,
		Duration: p.Duration,
		Fidelity: p.Fidelity,
		Slots:    p.Slots,
		Amps:     p.Amps,
	})
	if err != nil {
		return "", nil, err
	}
	return frame(KindPulse, payload)
}

// EncodeSynthRecord frames one synthesis-cache entry as a record.
// Circuits carrying explicit-matrix gates (Unitary/VUG) are not
// persistable — QSearch output is U3+CX only, so hitting this means
// the caller tried to store something the cache never produces.
func EncodeSynthRecord(u *linalg.Matrix, circ *circuit.Circuit, ok bool) (name string, data []byte, err error) {
	if u == nil {
		return "", nil, fmt.Errorf("store: nil synth entry")
	}
	if u.Rows != u.Cols || u.Rows > maxDim {
		return "", nil, fmt.Errorf("store: unsupported unitary %dx%d", u.Rows, u.Cols)
	}
	p := synthPayload{U: encodeMatrix(u), Ok: ok}
	if circ != nil {
		if circ.Len() > maxOps {
			return "", nil, fmt.Errorf("store: circuit exceeds %d ops", maxOps)
		}
		p.Qubits = circ.NumQubits
		p.Ops = make([]opJSON, 0, circ.Len())
		for _, op := range circ.Ops {
			if _, fixed := gate.Registry[op.G.Kind]; !fixed {
				return "", nil, fmt.Errorf("store: gate %q carries a matrix and is not persistable", op.G.Kind)
			}
			p.Ops = append(p.Ops, opJSON{
				Kind:   string(op.G.Kind),
				Params: op.G.Params,
				Qubits: op.Qubits,
			})
		}
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return "", nil, err
	}
	return frame(KindSynth, payload)
}

// frame wraps a payload in the checksummed header and derives the
// content-addressed filename from the payload hash. Two records with
// identical content frame to identical bytes under identical names, so
// concurrent writers are idempotent.
func frame(kind Kind, payload []byte) (string, []byte, error) {
	if len(payload) > maxPayloadBytes {
		return "", nil, fmt.Errorf("store: payload %d bytes exceeds %d", len(payload), maxPayloadBytes)
	}
	sum := sha256.Sum256(payload)
	hexsum := hex.EncodeToString(sum[:])
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %d %s %d %s\n", Magic, CodecVersion, kind, len(payload), hexsum)
	b.Write(payload)
	return fmt.Sprintf("%c-%s.rec", kind[0], hexsum[:32]), b.Bytes(), nil
}

// DecodeRecord parses and validates one record file. Every failure
// mode — truncation, a bit flip anywhere (the checksum covers the
// payload, the header fields gate themselves), a version from another
// build, out-of-bounds dimensions, non-finite floats, gates the
// registry does not know — returns an error; the loader skips such
// files and the in-memory caches never see them.
func DecodeRecord(data []byte) (*Record, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || nl > 160 {
		return nil, fmt.Errorf("store: missing record header")
	}
	fields := bytes.Fields(data[:nl])
	if len(fields) != 5 {
		return nil, fmt.Errorf("store: malformed header (%d fields)", len(fields))
	}
	if string(fields[0]) != Magic {
		return nil, fmt.Errorf("store: bad magic %q", fields[0])
	}
	ver, err := strconv.Atoi(string(fields[1]))
	if err != nil || ver != CodecVersion {
		return nil, fmt.Errorf("store: record version %q, this build reads %d", fields[1], CodecVersion)
	}
	kind := Kind(fields[2])
	if kind != KindPulse && kind != KindSynth {
		return nil, fmt.Errorf("store: unknown record kind %q", fields[2])
	}
	n, err := strconv.Atoi(string(fields[3]))
	if err != nil || n < 0 || n > maxPayloadBytes {
		return nil, fmt.Errorf("store: bad payload length %q", fields[3])
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, fmt.Errorf("store: payload is %d bytes, header says %d", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(fields[4]) {
		return nil, fmt.Errorf("store: payload checksum mismatch")
	}
	switch kind {
	case KindPulse:
		return decodePulsePayload(payload)
	default:
		return decodeSynthPayload(payload)
	}
}

func decodePulsePayload(payload []byte) (*Record, error) {
	var p pulsePayload
	if err := strictUnmarshal(payload, &p); err != nil {
		return nil, err
	}
	u, err := decodeMatrix(p.U)
	if err != nil {
		return nil, err
	}
	if len(p.Label) > maxLabelLen {
		return nil, fmt.Errorf("store: pulse label too long")
	}
	if !finite(p.Duration) || p.Duration < 0 || p.Duration > 1e12 {
		return nil, fmt.Errorf("store: pulse duration %v out of range", p.Duration)
	}
	if !finite(p.Fidelity) || p.Fidelity < 0 || p.Fidelity > 1.000001 {
		return nil, fmt.Errorf("store: pulse fidelity %v out of range", p.Fidelity)
	}
	if p.Slots < 0 || p.Slots > maxSlots || len(p.Amps) > maxSlots {
		return nil, fmt.Errorf("store: pulse slot count out of range")
	}
	for _, row := range p.Amps {
		if len(row) > maxControls {
			return nil, fmt.Errorf("store: amplitude row exceeds %d controls", maxControls)
		}
		for _, a := range row {
			if !finite(a) {
				return nil, fmt.Errorf("store: non-finite amplitude")
			}
		}
	}
	return &Record{
		Kind: KindPulse,
		U:    u,
		Pulse: &pulse.Pulse{
			Label:    p.Label,
			Duration: p.Duration,
			Fidelity: p.Fidelity,
			Slots:    p.Slots,
			Amps:     p.Amps,
		},
	}, nil
}

func decodeSynthPayload(payload []byte) (*Record, error) {
	var p synthPayload
	if err := strictUnmarshal(payload, &p); err != nil {
		return nil, err
	}
	u, err := decodeMatrix(p.U)
	if err != nil {
		return nil, err
	}
	rec := &Record{Kind: KindSynth, U: u, Ok: p.Ok}
	if p.Qubits == 0 && len(p.Ops) == 0 {
		return rec, nil // a synthesis that produced no circuit
	}
	if p.Qubits < 1 || p.Qubits > 16 {
		return nil, fmt.Errorf("store: circuit width %d out of range", p.Qubits)
	}
	if len(p.Ops) > maxOps {
		return nil, fmt.Errorf("store: circuit exceeds %d ops", maxOps)
	}
	circ := circuit.New(p.Qubits)
	for i, op := range p.Ops {
		spec, fixed := gate.Registry[gate.Kind(op.Kind)]
		if !fixed {
			return nil, fmt.Errorf("store: op %d has unknown gate kind %q", i, op.Kind)
		}
		if len(op.Params) != spec.Params {
			return nil, fmt.Errorf("store: op %d (%s) has %d params, want %d", i, op.Kind, len(op.Params), spec.Params)
		}
		for _, v := range op.Params {
			if !finite(v) {
				return nil, fmt.Errorf("store: op %d has a non-finite param", i)
			}
		}
		if len(op.Qubits) != spec.Qubits {
			return nil, fmt.Errorf("store: op %d (%s) addresses %d qubits, want %d", i, op.Kind, len(op.Qubits), spec.Qubits)
		}
		seen := map[int]bool{}
		for _, q := range op.Qubits {
			if q < 0 || q >= p.Qubits || seen[q] {
				return nil, fmt.Errorf("store: op %d has invalid qubit list %v", i, op.Qubits)
			}
			seen[q] = true
		}
		// Validated against the registry above, so neither constructor
		// can panic here.
		circ.Append(gate.New(gate.Kind(op.Kind), op.Params...), op.Qubits...)
	}
	rec.Circ = circ
	return rec, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// garbage, so a record either round-trips exactly or fails loudly.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("store: invalid payload: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("store: trailing data after payload")
	}
	return nil
}
