// Pulse library: demonstrates EPOC's lookup-table reuse, including
// global-phase-aware matching — the paper's improvement over
// AccQOC/PAQOC ("similar to having a higher cache hit rate").
//
// Two programs that differ only in gate spelling — s vs rz(π/2), which
// are the same operation up to a global phase e^{iπ/4} — produce block
// unitaries that differ by that phase. A phase-naive library (AccQOC/
// PAQOC behaviour) re-runs GRAPE for the second program; EPOC's
// phase-aware keys reuse every pulse.
//
// Run with: go run ./examples/pulse_library
package main

import (
	"fmt"
	"log"

	"epoc"
)

// program builds the same entangling circuit, spelling the phase gate
// as "s" or as "rz(pi/2)".
func program(useS bool) *epoc.Circuit {
	c := epoc.NewCircuit(4)
	h, _ := epoc.NewGate("h")
	cx, _ := epoc.NewGate("cx")
	var phaseGate epoc.Gate
	if useS {
		phaseGate, _ = epoc.NewGate("s")
	} else {
		phaseGate, _ = epoc.NewGate("rz", 3.14159265358979/2)
	}
	for q := 0; q < 4; q++ {
		c.Append(h, q)
		c.Append(phaseGate, q)
	}
	for q := 0; q < 3; q++ {
		c.Append(cx, q, q+1)
		c.Append(phaseGate, q+1)
	}
	return c
}

func main() {
	dev := epoc.LinearDevice(4)
	for _, matchPhase := range []bool{false, true} {
		lib := epoc.NewPulseLibrary(matchPhase)
		fmt.Printf("--- global-phase matching = %v ---\n", matchPhase)
		for _, useS := range []bool{true, false} {
			c := program(useS)
			// PAQOC-style flow: block unitaries reach the library without
			// synthesis normalization, so the phase spelling survives.
			res, err := epoc.Compile(c, epoc.CompileOptions{
				Strategy: epoc.StrategyPAQOC,
				Device:   dev,
				Library:  lib,
			})
			if err != nil {
				log.Fatal(err)
			}
			spelling := "rz(pi/2)"
			if useS {
				spelling = "s"
			}
			fmt.Printf("program with %-9s latency %7.1f ns, GRAPE runs %2d, hits so far %2d\n",
				spelling, res.Latency, res.Stats.QOCRuns, lib.Hits)
		}
		fmt.Printf("library: %d entries, hit rate %.0f%%\n\n", lib.Len(), 100*lib.HitRate())
	}
	fmt.Println("With phase-aware keys the second program re-uses every pulse;")
	fmt.Println("without them each phase spelling pays for its own GRAPE runs.")
}
