// Quickstart: parse a small OpenQASM program, compile it with the full
// EPOC pipeline (real GRAPE pulses), and compare against the
// gate-based baseline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"epoc"
)

const src = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
rz(pi/4) q[2];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
`

func main() {
	prog, err := epoc.ParseQASM(src)
	if err != nil {
		log.Fatal(err)
	}
	c := prog.Circuit
	dev := epoc.LinearDevice(c.NumQubits)
	fmt.Printf("input: %d qubits, %d gates, depth %d\n\n", c.NumQubits, c.Len(), c.Depth())

	for _, strategy := range []epoc.Strategy{epoc.StrategyGateBased, epoc.StrategyEPOC} {
		res, err := epoc.Compile(c, epoc.CompileOptions{Strategy: strategy, Device: dev})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s latency %7.1f ns   fidelity %.5f   pulses %2d   compile %s\n",
			strategy, res.Latency, res.Fidelity, res.Stats.PulseCount, res.CompileTime.Round(1e6))
	}

	// Inspect the EPOC pulse schedule in detail.
	res, err := epoc.Compile(c, epoc.CompileOptions{Strategy: epoc.StrategyEPOC, Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Schedule.String())
}
