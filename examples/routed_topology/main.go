// Routed topology: compiles a circuit whose two-qubit gates ignore the
// device's coupler graph, letting the router insert SWAPs before the
// EPOC pipeline, and visualizes the resulting pulse schedule as an
// ASCII Gantt chart.
//
// Run with: go run ./examples/routed_topology
package main

import (
	"fmt"
	"log"

	"epoc"
	"epoc/internal/core"
)

func main() {
	// Long-range entanglement on a 5-qubit chain: q0 talks to q4.
	c := epoc.NewCircuit(5)
	h, _ := epoc.NewGate("h")
	cx, _ := epoc.NewGate("cx")
	rz, _ := epoc.NewGate("rz", 0.7)
	c.Append(h, 0)
	c.Append(cx, 0, 4) // distance 4 on the chain
	c.Append(rz, 4)
	c.Append(cx, 0, 4)
	c.Append(cx, 2, 4) // distance 2
	c.Append(h, 2)

	dev := epoc.LinearDevice(5)
	fmt.Printf("input: %d gates, depth %d (with non-adjacent CXs)\n\n", c.Len(), c.Depth())

	for _, routed := range []bool{false, true} {
		res, err := epoc.Compile(c, epoc.CompileOptions{
			Strategy: epoc.StrategyEPOC,
			Device:   dev,
			Mode:     core.QOCEstimate,
			Route:    routed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("route=%v: latency %.1f ns, fidelity %.4f, pulses %d\n",
			routed, res.Latency, res.Fidelity, res.Stats.PulseCount)
		if routed {
			fmt.Println()
			fmt.Print(res.Schedule.Gantt(90))
			// With routing every pulse sits on a physical coupler.
			for _, it := range res.Schedule.Items {
				qs := it.Pulse.Qubits
				if len(qs) == 2 && qs[1]-qs[0] != 1 {
					log.Fatalf("pulse on non-adjacent qubits %v", qs)
				}
			}
			fmt.Println("\nall two-qubit pulses sit on physical couplers ✓")
		}
	}
}
