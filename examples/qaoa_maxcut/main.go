// QAOA MaxCut: the optimization workload the paper's introduction
// motivates. Builds a depth-p QAOA circuit for MaxCut on a ring graph,
// compiles it with every strategy, and shows where EPOC's latency win
// comes from (ZX depth reduction + regrouped pulses).
//
// Run with: go run ./examples/qaoa_maxcut
package main

import (
	"fmt"
	"log"
	"math"

	"epoc"
)

func qaoaRing(n, p int, gammas, betas []float64) *epoc.Circuit {
	c := epoc.NewCircuit(n)
	h, _ := epoc.NewGate("h")
	cx, _ := epoc.NewGate("cx")
	for q := 0; q < n; q++ {
		c.Append(h, q)
	}
	for layer := 0; layer < p; layer++ {
		for q := 0; q < n; q++ {
			a, b := q, (q+1)%n
			rz, _ := epoc.NewGate("rz", 2*gammas[layer])
			c.Append(cx, a, b)
			c.Append(rz, b)
			c.Append(cx, a, b)
		}
		for q := 0; q < n; q++ {
			rx, _ := epoc.NewGate("rx", 2*betas[layer])
			c.Append(rx, q)
		}
	}
	return c
}

func main() {
	const n, p = 6, 2
	gammas := []float64{0.8, math.Pi / 3}
	betas := []float64{0.35, 0.9}
	c := qaoaRing(n, p, gammas, betas)
	dev := epoc.LinearDevice(n)

	fmt.Printf("QAOA MaxCut ring: %d qubits, p=%d, %d gates, depth %d\n\n", n, p, c.Len(), c.Depth())
	opt := epoc.DepthOptimize(c)
	fmt.Printf("ZX depth optimization: %d -> %d\n\n", c.Depth(), opt.Depth())

	fmt.Printf("%-13s %12s %10s %8s\n", "strategy", "latency (ns)", "fidelity", "pulses")
	for _, s := range epoc.Strategies() {
		res, err := epoc.Compile(c, epoc.CompileOptions{Strategy: s, Device: dev})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %12.1f %10.4f %8d\n", s, res.Latency, res.Fidelity, res.Stats.PulseCount)
	}
}
