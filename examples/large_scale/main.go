// Large scale: reproduces the paper's §4 feasibility claim — "we
// validated our framework by testing it with a large and deep
// 160-qubit quantum program, obtaining meaningful results."
//
// QOC runs in calibrated-estimate mode at this scale (see DESIGN.md);
// the full pipeline (ZX, partitioning, synthesis, regrouping,
// scheduling) is exercised for real.
//
// Run with: go run ./examples/large_scale
package main

import (
	"fmt"
	"log"
	"time"

	"epoc"
	"epoc/internal/benchcirc"
	"epoc/internal/core"
)

func main() {
	const qubits, layers = 160, 8
	c := benchcirc.RandomLayered(qubits, layers, 1)
	dev := epoc.LinearDevice(qubits)
	fmt.Printf("program: %d qubits, %d gates, depth %d\n", qubits, c.Len(), c.Depth())

	start := time.Now()
	res, err := epoc.Compile(c, epoc.CompileOptions{
		Strategy: epoc.StrategyEPOC,
		Device:   dev,
		Mode:     core.QOCEstimate,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("blocks: %d   pulses: %d   library hits: %d\n",
		res.Stats.Blocks, res.Stats.PulseCount, res.Stats.LibraryHits)
	fmt.Printf("latency: %.1f ns   fidelity (ESP): %.4f\n", res.Latency, res.Fidelity)

	util := res.Schedule.Utilization()
	var mean float64
	for _, u := range util {
		mean += u
	}
	mean /= float64(len(util))
	fmt.Printf("mean qubit-line utilization: %.1f%%\n", 100*mean)
}
