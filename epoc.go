// Package epoc is the public API of the EPOC pulse-generation
// framework — a Go reproduction of "EPOC: An Efficient Pulse
// Generation Framework with Advanced Synthesis for Quantum Circuits"
// (DAC 2025).
//
// The pipeline compiles gate-level quantum circuits into microwave
// pulse schedules through five stages: graph-based (ZX-calculus) depth
// optimization, greedy circuit partitioning, VUG-based heuristic
// synthesis, regrouping, and GRAPE quantum optimal control with a
// global-phase-aware pulse library. Baseline flows (gate-based,
// AccQOC-style, PAQOC-style, EPOC-without-grouping) share the same
// engine for apples-to-apples evaluation.
//
// Quick start:
//
//	prog, _ := epoc.ParseQASM(src)
//	dev := epoc.LinearDevice(prog.Circuit.NumQubits)
//	res, _ := epoc.Compile(prog.Circuit, epoc.CompileOptions{
//		Strategy: epoc.StrategyEPOC,
//		Device:   dev,
//	})
//	fmt.Println(res.Latency, res.Fidelity)
package epoc

import (
	"context"
	"fmt"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/obs"
	"epoc/internal/pulse"
	"epoc/internal/qasm"
	"epoc/internal/trace"
)

// Circuit is a gate-level quantum circuit (qubit 0 = least-significant
// bit of a basis state index).
type Circuit = circuit.Circuit

// Op is one gate application within a circuit.
type Op = circuit.Op

// Gate is a quantum gate; build one with NewGate.
type Gate = gate.Gate

// Device models the target processor (topology, calibrations, control
// parameters).
type Device = hardware.Device

// CompileOptions configures a compilation; the zero value plus a
// Device selects the full EPOC flow with sensible defaults.
type CompileOptions = core.Options

// Result is a compiled pulse program with latency (ns), ESP fidelity,
// compile time, and per-stage statistics.
type Result = core.Result

// Budgets bounds a compilation: a whole-pipeline deadline plus
// per-stage time and iteration budgets. Exceeding a budget degrades
// the result (Result.Degraded, best-so-far output); canceling the
// context aborts it. The zero value means unlimited.
type Budgets = core.Budgets

// Strategy selects one of the compilation flows.
type Strategy = core.Strategy

// PulseLibrary caches optimized pulses across compilations.
type PulseLibrary = pulse.Library

// Schedule is a per-qubit-line pulse timeline.
type Schedule = pulse.Schedule

// QASMProgram is the result of parsing OpenQASM 2.0 source.
type QASMProgram = qasm.Program

// Recorder collects per-stage timings, counters and bounded traces
// during compilation; attach one via CompileOptions.Obs. A nil
// Recorder is valid everywhere and records nothing at zero cost.
type Recorder = obs.Recorder

// ObsSnapshot is an immutable copy of everything a Recorder has
// collected, ready for rendering or JSON encoding.
type ObsSnapshot = obs.Snapshot

// Tracer records a hierarchical span trace of a compilation — per
// stage, per synthesized block, per optimized pulse — exportable as
// Chrome trace-event JSON (Perfetto-loadable) via Tracer.ChromeTrace
// or aggregated via Tracer.Summary. Attach one via
// CompileOptions.Trace; a nil Tracer records nothing at zero cost.
type Tracer = trace.Tracer

// Compilation strategies.
const (
	StrategyGateBased   = core.GateBased
	StrategyAccQOC      = core.AccQOC
	StrategyPAQOC       = core.PAQOC
	StrategyEPOCNoGroup = core.EPOCNoGroup
	StrategyEPOC        = core.EPOC
)

// QOC modes: full GRAPE, or the calibrated estimator for scale
// studies.
const (
	QOCFull     = core.QOCFull
	QOCEstimate = core.QOCEstimate
)

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// NewGate builds a gate by its QASM-style name (x, h, rz, cx, ccx, …)
// with the appropriate number of parameters. It returns an error for
// unknown names or wrong parameter counts.
func NewGate(name string, params ...float64) (Gate, error) {
	kind := gate.Kind(name)
	spec, ok := gate.Registry[kind]
	if !ok {
		return Gate{}, fmt.Errorf("epoc: unknown gate %q", name)
	}
	if len(params) != spec.Params {
		return Gate{}, fmt.Errorf("epoc: gate %q wants %d params, got %d", name, spec.Params, len(params))
	}
	return gate.New(kind, params...), nil
}

// ParseQASM parses OpenQASM 2.0 source into a program (a flat circuit
// plus register metadata).
func ParseQASM(src string) (*QASMProgram, error) { return qasm.Parse(src) }

// WriteQASM renders a circuit back to OpenQASM 2.0.
func WriteQASM(c *Circuit) (string, error) { return qasm.Write(c) }

// LinearDevice returns an IBM-flavoured n-qubit device with a linear
// coupler chain and calibrated basis-gate pulses.
func LinearDevice(n int) *Device { return hardware.LinearChain(n) }

// NewPulseLibrary creates a pulse library; matchGlobalPhase enables
// EPOC's phase-aware unitary matching (higher hit rates).
func NewPulseLibrary(matchGlobalPhase bool) *PulseLibrary {
	return pulse.NewLibrary(matchGlobalPhase)
}

// NewRecorder creates an observability recorder. Set it as
// CompileOptions.Obs (it is goroutine-safe and may be shared across
// compilations), then read results with Recorder.Snapshot.
func NewRecorder() *Recorder { return obs.New() }

// NewTracer creates a span tracer reading the real clock. Set it as
// CompileOptions.Trace, then export with Tracer.ChromeTrace or
// Tracer.Summary after the compile returns.
func NewTracer() *Tracer { return trace.New(nil) }

// Compile lowers a circuit to a pulse schedule under the options'
// strategy (full EPOC by default).
func Compile(c *Circuit, opts CompileOptions) (*Result, error) {
	return core.Compile(c, opts)
}

// CompileContext is Compile with a context. Canceling ctx aborts the
// compilation promptly at the next checkpoint — stage boundaries,
// synthesis node expansions, optimizer iterations — returning ctx's
// error with no partial result and no leaked goroutines. Budget
// expiry (CompileOptions.Budgets) is independent: it degrades rather
// than aborts.
func CompileContext(ctx context.Context, c *Circuit, opts CompileOptions) (*Result, error) {
	return core.CompileContext(ctx, c, opts)
}

// DepthOptimize runs only the graph-based (ZX) depth-optimization
// stage and returns a verified equivalent circuit that is never deeper
// than the input.
func DepthOptimize(c *Circuit) *Circuit { return core.DepthOptimize(c) }

// Benchmark returns one of the built-in evaluation circuits by name
// (see BenchmarkNames).
func Benchmark(name string) (*Circuit, error) { return benchcirc.Get(name) }

// BenchmarkNames lists the built-in evaluation circuits.
func BenchmarkNames() []string { return benchcirc.Names() }

// Strategies lists all compilation strategies in report order.
func Strategies() []Strategy { return core.Strategies() }
