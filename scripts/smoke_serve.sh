#!/bin/sh
# smoke_serve.sh — end-to-end smoke test for epoc-serve (make smoke-serve).
#
# Builds the daemon, starts it on an ephemeral port, and drives the
# documented client workflow from SERVING.md over real HTTP:
#
#   1. cold compile  — POST /v1/compile returns a done envelope with a
#      manifest (config_fingerprint + metrics) and an Epoc-Trace-Id;
#   2. warm compile  — the identical request reports synth-cache hits
#      and re-synthesizes nothing;
#   3. progress      — GET /v1/compile/{id}/events replays the stream
#      and terminates with {"done":true};
#   4. observability — /v1/healthz, /v1/stats and /debug/vars agree;
#   5. shutdown      — SIGTERM drains and the process exits cleanly.
#
# Requires: go, curl, python3 (for JSON assertions).
set -eu

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- server log ---" >&2
        cat "$workdir/serve.log" >&2 || true
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT INT TERM

say() { echo "smoke-serve: $*"; }

say "building epoc-serve"
go build -o "$workdir/epoc-serve" ./cmd/epoc-serve

"$workdir/epoc-serve" -addr localhost:0 -workers 2 -queue 8 \
    2>"$workdir/serve.log" &
server_pid=$!

# The daemon logs its bound address; poll until it appears and answers.
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/serve.log")
    if [ -n "$base" ] && curl -sf "$base/v1/healthz" >/dev/null 2>&1; then
        break
    fi
    base=""
    i=$((i + 1))
    sleep 0.1
done
[ -n "$base" ] || { say "server never became healthy"; exit 1; }
say "server up at $base"

req='{"circuit":"ghz","options":{"mode":"estimate","seed":1},"deadline_ms":60000}'

say "cold compile"
curl -sf -D "$workdir/cold.hdr" -o "$workdir/cold.json" \
    -H 'Content-Type: application/json' -d "$req" "$base/v1/compile"
grep -qi '^epoc-trace-id:' "$workdir/cold.hdr" \
    || { say "missing Epoc-Trace-Id response header"; exit 1; }
python3 - "$workdir/cold.json" <<'EOF'
import json, sys
env = json.load(open(sys.argv[1]))
assert env["status"] == "done", env["status"]
assert env["trace_id"], "empty trace_id"
m = env["manifest"]
assert m["config_fingerprint"], "manifest missing config fingerprint"
assert m["metrics"]["fidelity"] > 0, "manifest missing fidelity metric"
assert env["cache"]["synth_misses"] > 0, "cold run should miss the synth cache"
print("smoke-serve:   cold ok: id=%s fidelity=%.5f" % (env["id"], m["metrics"]["fidelity"]))
EOF

say "warm compile (shared caches)"
curl -sf -o "$workdir/warm.json" \
    -H 'Content-Type: application/json' -d "$req" "$base/v1/compile"
warm_id=$(python3 - "$workdir/warm.json" "$workdir/cold.json" <<'EOF'
import json, sys
warm = json.load(open(sys.argv[1]))
cold = json.load(open(sys.argv[2]))
assert warm["cache"]["synth_hits"] > 0, "warm run saw no synth-cache hits"
assert warm["cache"]["synth_misses"] == 0, "warm run re-synthesized blocks"
assert warm["cache"]["library_hits"] > 0, "warm run saw no pulse-library hits"
assert warm["manifest"]["config_fingerprint"] == cold["manifest"]["config_fingerprint"], \
    "identical requests produced different config fingerprints"
print(warm["id"])
EOF
)
say "  warm ok: id=$warm_id"

say "progress stream"
curl -sf "$base/v1/compile/$warm_id/events" | python3 -c '
import json, sys
lines = [json.loads(l) for l in sys.stdin if l.strip()]
assert lines, "empty event stream"
assert lines[-1].get("done") and lines[-1].get("status") == "done", lines[-1]
print("smoke-serve:   %d events, terminal status done" % len(lines))
'

say "observability endpoints"
curl -sf "$base/v1/stats" | python3 -c '
import json, sys
stats = json.load(sys.stdin)
assert stats["counters"]["serve/completed"] >= 2, stats["counters"]
assert stats["cache"]["synth_hits"] >= 1, stats["cache"]
assert stats["circuits"], "no benchmark catalog"
'
curl -sf "$base/debug/vars" | python3 -c '
import json, sys
assert json.load(sys.stdin)["epoc"]["serve/requests"] >= 2
'

say "graceful shutdown"
kill -TERM "$server_pid"
wait "$server_pid" || { say "server exited non-zero on SIGTERM"; exit 1; }
server_pid=""
grep -q 'stopped' "$workdir/serve.log" || { say "no clean-stop log line"; exit 1; }

say "PASS"
