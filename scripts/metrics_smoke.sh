#!/bin/sh
# metrics_smoke.sh — telemetry smoke test (make metrics-smoke).
#
# Starts epoc-serve with a persistent store and structured logging,
# runs a cold + warm compile in the default full-GRAPE mode, then
# checks the whole ISSUE-10 telemetry surface end to end:
#
#   1. /metrics parses under the strict text-format parser
#      (epoc-stats -promcheck) and carries the required families:
#      stage histograms, synth-cache counters, store counters, and
#      the queue gauges;
#   2. the stage histogram really is bucketed
#      (epoc_stage_seconds_bucket{stage=...,le=...});
#   3. every access-log line is JSON and carries the trace_id the
#      response header carried;
#   4. epoc-stats diffs two /v1/stats snapshots and gates on them
#      (-fail-on synth_hit_rate=0 must pass: the rate only rises).
#
# Requires: go, curl, python3.
set -eu

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    status=$?
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -TERM "$server_pid" 2>/dev/null || true
        wait "$server_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- server log ---" >&2
        cat "$workdir/serve.log" >&2 || true
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT INT TERM

say() { echo "metrics-smoke: $*"; }

say "building epoc-serve and epoc-stats"
go build -o "$workdir/epoc-serve" ./cmd/epoc-serve
go build -o "$workdir/epoc-stats" ./cmd/epoc-stats

"$workdir/epoc-serve" -addr localhost:0 -workers 2 -queue 8 \
    -store "$workdir/store" -log-level info \
    2>"$workdir/serve.log" &
server_pid=$!

base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' "$workdir/serve.log")
    if [ -n "$base" ] && curl -sf "$base/v1/healthz" >/dev/null 2>&1; then
        break
    fi
    base=""
    i=$((i + 1))
    sleep 0.1
done
[ -n "$base" ] || { say "server never became healthy"; exit 1; }
say "server up at $base"

# Default full-GRAPE mode: the store only harvests in its own
# namespace, and estimate-mode requests would bypass it.
req='{"circuit":"ghz","options":{"seed":1},"deadline_ms":120000}'

say "cold compile (full mode, store harvest)"
curl -sf -D "$workdir/cold.hdr" -o "$workdir/cold.json" \
    -H 'Content-Type: application/json' -d "$req" "$base/v1/compile"
cold_trace=$(sed -n 's/^[Ee]poc-[Tt]race-[Ii]d: *//p' "$workdir/cold.hdr" | tr -d '\r')
[ -n "$cold_trace" ] || { say "missing Epoc-Trace-Id response header"; exit 1; }

curl -sf -o "$workdir/stats_cold.json" "$base/v1/stats"

say "warm compile (cache + library hits)"
curl -sf -o "$workdir/warm.json" \
    -H 'Content-Type: application/json' -d "$req" "$base/v1/compile"
curl -sf -o "$workdir/stats_warm.json" "$base/v1/stats"

say "scraping /metrics"
curl -sf -o "$workdir/scrape.prom" "$base/metrics"

say "strict-parsing the scrape (epoc-stats -promcheck)"
"$workdir/epoc-stats" -promcheck \
    -require epoc_stage_seconds,epoc_synthcache_hits_total,epoc_store_harvest_pulses_total,epoc_serve_queue_depth,epoc_serve_inflight,epoc_serve_requests_total,epoc_serve_compile_ms \
    "$workdir/scrape.prom"

grep -q 'epoc_stage_seconds_bucket{stage="qoc",le="' "$workdir/scrape.prom" \
    || { say "no bucketed stage histogram in the scrape"; exit 1; }

say "access-log / trace-header correlation"
python3 - "$workdir/serve.log" "$cold_trace" <<'EOF'
import json, sys
path, cold_trace = sys.argv[1], sys.argv[2]
records = []
for line in open(path):
    line = line.strip()
    if not line.startswith("{"):
        continue  # the listener banner and drain notices are plain text
    records.append(json.loads(line))
access = [r for r in records if r.get("msg") == "request"]
assert access, "no access-log records"
for r in access:
    assert r.get("trace_id"), "access record without trace_id: %r" % r
compiles = [r for r in access if r.get("path") == "/v1/compile"]
assert any(r["trace_id"] == cold_trace for r in compiles), \
    "no access record carries the cold compile's response trace ID"
for r in compiles:
    assert "queue_ms" in r and "compile_ms" in r, \
        "compile access record missing queue/compile split: %r" % r
stage_done = [r for r in records if r.get("msg") == "stage done"]
assert any(r.get("stage") == "stage/qoc" for r in stage_done), \
    "no stage-boundary records from the pipeline"
print("metrics-smoke:   %d access records, %d stage records, trace ids correlate"
      % (len(access), len(stage_done)))
EOF

say "run-diff gate over the two stats snapshots"
"$workdir/epoc-stats" -fail-on synth_hit_rate=0 \
    "$workdir/stats_cold.json" "$workdir/stats_warm.json"

say "graceful shutdown"
kill -TERM "$server_pid"
wait "$server_pid" || { say "server exited non-zero on SIGTERM"; exit 1; }
server_pid=""

say "PASS"
