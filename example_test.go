package epoc_test

import (
	"context"
	"fmt"

	"epoc"
	"epoc/internal/core"
)

// ExampleParseQASM parses OpenQASM 2.0 source and inspects the circuit.
func ExampleParseQASM() {
	prog, err := epoc.ParseQASM(`
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`)
	if err != nil {
		panic(err)
	}
	fmt.Println(prog.Circuit.NumQubits, "qubits,", prog.Circuit.Len(), "gates, depth", prog.Circuit.Depth())
	// Output: 2 qubits, 2 gates, depth 2
}

// ExampleCompile lowers a Bell circuit to pulses with the gate-based
// baseline, whose calibrated latencies are deterministic.
func ExampleCompile() {
	c := epoc.NewCircuit(2)
	h, _ := epoc.NewGate("h")
	cx, _ := epoc.NewGate("cx")
	c.Append(h, 0)
	c.Append(cx, 0, 1)

	res, err := epoc.Compile(c, epoc.CompileOptions{
		Strategy: epoc.StrategyGateBased,
		Device:   epoc.LinearDevice(2),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("latency %.1f ns, %d pulses\n", res.Latency, res.Stats.PulseCount)
	// Output: latency 335.5 ns, 2 pulses
}

// ExampleDepthOptimize shows the graph-based (ZX) depth optimization
// stage cancelling a redundant structure.
func ExampleDepthOptimize() {
	c := epoc.NewCircuit(2)
	h, _ := epoc.NewGate("h")
	cx, _ := epoc.NewGate("cx")
	s, _ := epoc.NewGate("s")
	sdg, _ := epoc.NewGate("sdg")
	c.Append(h, 0)
	c.Append(s, 0)
	c.Append(sdg, 0) // cancels with s
	c.Append(h, 0)   // cancels with h
	c.Append(cx, 0, 1)

	opt := epoc.DepthOptimize(c)
	fmt.Println("depth", c.Depth(), "->", opt.Depth())
	// Output: depth 5 -> 1
}

// ExampleCompile_strategies compares strategies on the same workload
// using the deterministic calibrated-estimate QOC mode.
func ExampleCompile_strategies() {
	c, _ := epoc.Benchmark("ghz")
	dev := epoc.LinearDevice(c.NumQubits)
	for _, s := range []epoc.Strategy{epoc.StrategyGateBased, epoc.StrategyEPOC} {
		res, err := epoc.Compile(c, epoc.CompileOptions{
			Strategy: s,
			Device:   dev,
			Mode:     core.QOCEstimate,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %.1f ns\n", s, res.Latency)
	}
	// Output:
	// gate-based: 2135.5 ns
	// epoc: 784.0 ns
}

// ExampleCompileContext compiles under a context and budgets. A
// canceled context aborts with an error; an exhausted budget instead
// degrades — here a one-node synthesis budget forces every block onto
// its gate-level fallback, and the result reports why.
func ExampleCompileContext() {
	c, _ := epoc.Benchmark("ghz")
	res, err := epoc.CompileContext(context.Background(), c, epoc.CompileOptions{
		Strategy: epoc.StrategyEPOC,
		Device:   epoc.LinearDevice(c.NumQubits),
		Mode:     epoc.QOCEstimate,
		Budgets:  epoc.Budgets{SynthNodes: 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("degraded:", res.Degraded, res.DegradeReasons)
	// Output: degraded: true [synth]
}

// ExampleNewRecorder attaches an observability recorder to a compile
// and reads its counters from the snapshot.
func ExampleNewRecorder() {
	rec := epoc.NewRecorder()
	c, _ := epoc.Benchmark("ghz")
	_, err := epoc.Compile(c, epoc.CompileOptions{
		Strategy: epoc.StrategyEPOC,
		Device:   epoc.LinearDevice(c.NumQubits),
		Mode:     epoc.QOCEstimate,
		Obs:      rec,
	})
	if err != nil {
		panic(err)
	}
	snap := rec.Snapshot()
	fmt.Println("compiles:", snap.Counters["compiles"],
		"cache misses:", snap.Counters["synthcache/miss"])
	// Output: compiles: 1 cache misses: 1
}

// ExampleNewPulseLibrary shows pulse reuse across compilations.
func ExampleNewPulseLibrary() {
	lib := epoc.NewPulseLibrary(true)
	c, _ := epoc.Benchmark("ghz")
	opts := epoc.CompileOptions{
		Strategy: epoc.StrategyEPOC,
		Device:   epoc.LinearDevice(c.NumQubits),
		Mode:     core.QOCEstimate,
		Library:  lib,
	}
	if _, err := epoc.Compile(c, opts); err != nil {
		panic(err)
	}
	missesAfterFirst := lib.Misses
	if _, err := epoc.Compile(c, opts); err != nil {
		panic(err)
	}
	fmt.Println("new misses on recompile:", lib.Misses-missesAfterFirst)
	// Output: new misses on recompile: 0
}
