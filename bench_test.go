package epoc

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index) plus
// the ablations DESIGN.md calls out and micro-benchmarks of the hot
// kernels. cmd/epoc-bench prints the same data as human-readable
// tables.
//
// Figure-level benchmarks run their full experiment once per iteration
// (b.N is 1 in practice) and attach the headline numbers as custom
// metrics; micro-benchmarks use b.N conventionally.

import (
	"sync"
	"testing"

	"epoc/internal/benchcirc"
	"epoc/internal/circuit"
	"epoc/internal/core"
	"epoc/internal/gate"
	"epoc/internal/hardware"
	"epoc/internal/linalg"
	"epoc/internal/partition"
	"epoc/internal/pulse"
	"epoc/internal/qoc"
	"epoc/internal/report"
	"epoc/internal/sim"
	"epoc/internal/synth"
	"epoc/internal/zx"

	"math/rand"
)

// --- Figure 5: ZX depth optimization ---

func BenchmarkFig5ZXDepthReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for seed := int64(1); seed <= 34; seed++ {
			n := 4 + int(seed)%6
			depth := 20 + int(seed*7)%50
			c := benchcirc.RandomCircuit(n, depth, seed)
			opt := core.DepthOptimize(c)
			ratios = append(ratios, float64(c.Depth())/float64(maxi(1, opt.Depth())))
		}
		b.ReportMetric(report.Mean(ratios), "avg-depth-reduction-x")
	}
}

// --- Figures 8-10: grouping study (shared, computed once) ---

type groupingRow struct {
	latNo, latYes   float64
	timeNo, timeYes float64
	fidNo, fidYes   float64
}

var (
	groupingOnce sync.Once
	groupingData map[string]groupingRow
)

func groupingStudy(b *testing.B) map[string]groupingRow {
	groupingOnce.Do(func() {
		groupingData = map[string]groupingRow{}
		for _, name := range benchcirc.Names() {
			c, err := benchcirc.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			dev := hardware.LinearChain(c.NumQubits)
			resNo, err := core.Compile(c, core.Options{
				Strategy: core.EPOCNoGroup, Device: dev, Library: pulse.NewLibrary(true)})
			if err != nil {
				b.Fatal(err)
			}
			resYes, err := core.Compile(c, core.Options{
				Strategy: core.EPOC, Device: dev, Library: pulse.NewLibrary(true)})
			if err != nil {
				b.Fatal(err)
			}
			groupingData[name] = groupingRow{
				latNo: resNo.Latency, latYes: resYes.Latency,
				timeNo: resNo.CompileTime.Seconds(), timeYes: resYes.CompileTime.Seconds(),
				fidNo: resNo.Fidelity, fidYes: resYes.Fidelity,
			}
		}
	})
	return groupingData
}

func BenchmarkFig8GroupingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := groupingStudy(b)
		var reductions []float64
		for _, r := range data {
			reductions = append(reductions, report.PercentChange(r.latNo, r.latYes))
		}
		b.ReportMetric(report.Mean(reductions), "avg-latency-reduction-%")
	}
}

func BenchmarkFig9CompileTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := groupingStudy(b)
		var overheads []float64
		for _, r := range data {
			if r.timeNo > 0 {
				overheads = append(overheads, 100*(r.timeYes-r.timeNo)/r.timeNo)
			}
		}
		b.ReportMetric(report.Mean(overheads), "avg-compile-overhead-%")
	}
}

func BenchmarkFig10Fidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data := groupingStudy(b)
		var gains []float64
		for _, r := range data {
			gains = append(gains, 100*(r.fidYes-r.fidNo)/r.fidNo)
		}
		b.ReportMetric(report.Mean(gains), "avg-fidelity-gain-%")
	}
}

// --- Table 1: strategy comparison ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		libPAQOC := pulse.NewLibrary(false)
		libEPOC := pulse.NewLibrary(true)
		var vsGate, vsPAQOC []float64
		for _, name := range benchcirc.Table1Names() {
			c, err := benchcirc.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			dev := hardware.LinearChain(c.NumQubits)
			gb, err := core.Compile(c, core.Options{Strategy: core.GateBased, Device: dev})
			if err != nil {
				b.Fatal(err)
			}
			pq, err := core.Compile(c, core.Options{Strategy: core.PAQOC, Device: dev, Library: libPAQOC})
			if err != nil {
				b.Fatal(err)
			}
			ep, err := core.Compile(c, core.Options{Strategy: core.EPOC, Device: dev, Library: libEPOC})
			if err != nil {
				b.Fatal(err)
			}
			vsGate = append(vsGate, report.PercentChange(gb.Latency, ep.Latency))
			vsPAQOC = append(vsPAQOC, report.PercentChange(pq.Latency, ep.Latency))
		}
		b.ReportMetric(report.Mean(vsGate), "latency-vs-gate-%")
		b.ReportMetric(report.Mean(vsPAQOC), "latency-vs-paqoc-%")
	}
}

// --- §4 scale test ---

func BenchmarkLargeScale160Q(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchcirc.RandomLayered(160, 8, 1)
		res, err := core.Compile(c, core.Options{
			Strategy: core.EPOC,
			Device:   hardware.LinearChain(160),
			Mode:     core.QOCEstimate,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Latency, "latency-ns")
		b.ReportMetric(float64(res.Stats.PulseCount), "pulses")
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationPartitionLimit(b *testing.B) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	for _, lim := range []int{2, 3} {
		lim := lim
		b.Run(map[int]string{2: "limit2", 3: "limit3"}[lim], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(c, core.Options{
					Strategy: core.EPOC, Device: dev, Mode: core.QOCEstimate,
					PartitionMaxQubits: lim, RegroupMaxQubits: lim,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency, "latency-ns")
			}
		})
	}
}

func BenchmarkAblationPulseLibrary(b *testing.B) {
	ghz, _ := benchcirc.Get("ghz")
	dev := hardware.LinearChain(ghz.NumQubits)
	for _, phase := range []bool{false, true} {
		phase := phase
		name := "exactMatch"
		if phase {
			name = "globalPhase"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib := pulse.NewLibrary(phase)
				res, err := core.Compile(ghz, core.Options{Strategy: core.EPOC, Device: dev, Library: lib})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.QOCRuns), "grape-runs")
				b.ReportMetric(float64(lib.Hits), "library-hits")
			}
		})
	}
}

func BenchmarkAblationZXPass(b *testing.B) {
	c, _ := benchcirc.Get("vqe")
	dev := hardware.LinearChain(c.NumQubits)
	for _, useZX := range []bool{false, true} {
		useZX := useZX
		name := "zxOff"
		if useZX {
			name = "zxOn"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				z := useZX
				res, err := core.Compile(c, core.Options{
					Strategy: core.EPOC, Device: dev, Mode: core.QOCEstimate, UseZX: &z,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Latency, "latency-ns")
				b.ReportMetric(float64(res.Stats.DepthAfterZX), "depth-after")
			}
		})
	}
}

func BenchmarkAblationTimeStep(b *testing.B) {
	x := gate.New(gate.X).Matrix()
	for _, dt := range []float64{1, 2, 4} {
		dt := dt
		b.Run(map[float64]string{1: "dt1ns", 2: "dt2ns", 4: "dt4ns"}[dt], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := qoc.StandardModel(1, qoc.ModelOptions{Dt: dt})
				r := qoc.DurationSearch(m, x, 2, int(80/dt), 2, qoc.GRAPEConfig{MaxIter: 300})
				b.ReportMetric(r.Duration, "duration-ns")
				b.ReportMetric(r.Fidelity, "fidelity")
			}
		})
	}
}

func BenchmarkAblationSynthesisBudget(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	u := linalg.RandomUnitary(4, rng)
	for _, maxCX := range []int{1, 2, 3} {
		maxCX := maxCX
		b.Run(map[int]string{1: "cx1", 2: "cx2", 3: "cx3"}[maxCX], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := synth.QSearch(u, synth.Options{MaxCNOTs: maxCX, Seed: 7})
				b.ReportMetric(res.Distance, "distance")
			}
		})
	}
}

// --- Micro-benchmarks of the hot kernels ---

func BenchmarkGRAPECNOT(b *testing.B) {
	m := qoc.StandardModel(2, qoc.ModelOptions{})
	target := gate.New(gate.CX).Matrix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := qoc.GRAPE(m, target, 60, qoc.GRAPEConfig{MaxIter: 300})
		if r.Fidelity < 0.99 {
			b.Fatalf("GRAPE fidelity %v", r.Fidelity)
		}
	}
}

func BenchmarkQSearchRandomSU4(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	u := linalg.RandomUnitary(4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := synth.QSearch(u, synth.Options{Seed: int64(i + 1)})
		if res.Distance > 1e-6 {
			b.Fatalf("QSearch distance %v", res.Distance)
		}
	}
}

func BenchmarkZXSimplifyAndExtract(b *testing.B) {
	c := benchcirc.RandomCircuit(6, 60, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := zx.FromCircuit(c)
		g.Simplify()
		if _, err := g.ToCircuit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionLargeCircuit(b *testing.B) {
	c := benchcirc.RandomLayered(64, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocks := partition.Partition(c, partition.Options{MaxQubits: 2, MaxGates: 16})
		if len(blocks) == 0 {
			b.Fatal("no blocks")
		}
	}
}

func BenchmarkStateVector16Q(b *testing.B) {
	c := benchcirc.RandomLayered(16, 6, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.RunCircuit(c)
		if s.Norm() < 0.99 {
			b.Fatal("norm lost")
		}
	}
}

func BenchmarkCircuitUnitary8Q(b *testing.B) {
	c, _ := benchcirc.Get("ghz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := c.Unitary()
		if u.Rows != 256 {
			b.Fatal("wrong dimension")
		}
	}
}

func BenchmarkExpmHermitian8x8(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	h := linalg.RandomHermitian(8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.ExpIHermitian(h, 0.1)
	}
}

func BenchmarkScheduleASAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := pulse.NewSchedule(32)
		for j := 0; j < 1000; j++ {
			q := j % 31
			s.Add(&pulse.Pulse{Label: "p", Qubits: []int{q, q + 1}, Duration: 100, Fidelity: 0.999})
		}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// circuitDepthGuard keeps the circuit import used even if benchmarks
// above are filtered out at build time.
var _ = circuit.New

// BenchmarkSynthWorkers compares serial vs pooled block synthesis on
// the same circuit (QOCEstimate isolates stage 3; a fresh library and
// synthesis cache per iteration keeps runs independent). The custom
// metrics expose the cache's dedup ratio — the part of the win that
// shows up even on one core.
func BenchmarkSynthWorkers(b *testing.B) {
	c, _ := benchcirc.Get("qaoa")
	dev := hardware.LinearChain(c.NumQubits)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Compile(c, core.Options{
					Strategy:   core.EPOC,
					Device:     dev,
					Mode:       core.QOCEstimate,
					Workers:    workers,
					Library:    pulse.NewLibrary(true),
					SynthCache: synth.NewCache(),
				})
				if err != nil {
					b.Fatal(err)
				}
				hits, misses := res.Stats.SynthCacheHits, res.Stats.SynthCacheMisses
				b.ReportMetric(float64(misses), "qsearch-runs")
				if hits+misses > 0 {
					b.ReportMetric(100*float64(hits)/float64(hits+misses), "cache-hit-%")
				}
			}
		})
	}
}

// BenchmarkLibraryHitRate measures cross-program pulse reuse over the
// full 25-circuit corpus (paper + extended), with and without EPOC's
// global-phase matching.
func BenchmarkLibraryHitRate(b *testing.B) {
	for _, phase := range []bool{false, true} {
		phase := phase
		name := "exactMatch"
		if phase {
			name = "globalPhase"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib := pulse.NewLibrary(phase)
				for _, bench := range benchcirc.AllNames() {
					c, err := benchcirc.Get(bench)
					if err != nil {
						b.Fatal(err)
					}
					_, err = core.Compile(c, core.Options{
						Strategy: core.EPOC,
						Device:   hardware.LinearChain(c.NumQubits),
						Mode:     core.QOCEstimate,
						Library:  lib,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(100*lib.HitRate(), "hit-rate-%")
			}
		})
	}
}
