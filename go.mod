module epoc

go 1.22
