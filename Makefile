GO ?= go

.PHONY: all build vet test race bench fuzz ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness; re-runs the paper's experiments (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

# Native Go fuzzing of the QASM parser (bounded; CI runs the same
# target for 30s on every push).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/qasm

ci: build vet race
