GO ?= go

.PHONY: all build vet lint test race bench fuzz ci

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/epoc-lint): numerical and
# concurrency invariants — float equality, global rand, import DAG,
# unchecked in-module errors, copied locks. See DESIGN.md §8.
lint:
	$(GO) run ./cmd/epoc-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness; re-runs the paper's experiments (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

# Native Go fuzzing of the QASM parser (bounded; CI runs the same
# target for 30s on every push).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/qasm

ci: build vet lint race
