GO ?= go

.PHONY: all build vet test race bench ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark harness; re-runs the paper's experiments (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet race
