GO ?= go

.PHONY: all build vet lint lint-fixtures test race test-leak bench bench-kernels bench-json bench-gate store-warm-gate fuzz serve smoke-serve metrics-smoke ci

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/epoc-lint): the full
# 12-analyzer suite — float equality, global rand, import DAG,
# unchecked in-module errors, copied locks, discarded contexts,
# unended spans, Prometheus metric naming, plus the dataflow
# analyzers (map-order determinism, lock-guarded fields, goroutine
# joins, hot-loop allocations). Exit codes: 0 clean, 1 findings,
# 2 load error. See DESIGN.md §8 and §13.
lint:
	$(GO) run ./cmd/epoc-lint ./...

# The lint framework's own tests: analyzer fixtures under
# internal/lint/testdata, CFG unit tests, the repo self-check, and the
# CLI exit-code contract.
lint-fixtures:
	$(GO) test -timeout 5m ./internal/lint/... ./cmd/epoc-lint/...

# An explicit -timeout so a cancellation/budget regression hangs the
# suite for at most 5 minutes instead of the Go default 10.
test:
	$(GO) test -timeout 5m ./...

race:
	$(GO) test -timeout 10m -race ./...

# The cancellation conformance and cache-coalescing suites, twice under
# the race detector: goroutine leaks and cache poisoning that survive a
# first pass show up as cross-run interference in the second.
test-leak:
	$(GO) test -timeout 10m -race -count=2 \
		-run 'Cancel|Canceled|Budget|Degrad|Leak|Cache' \
		./internal/core ./internal/synth ./internal/qoc ./internal/faultclock

# Full benchmark harness; re-runs the paper's experiments (slow).
bench:
	$(GO) test -bench=. -benchmem ./...

# Kernel-layer microbenchmarks (DESIGN.md §14): the unrolled/blocked
# matmul paths and exponentials against the naive and pre-kernel
# baselines, plus the cached GRAPE propagator loop. -benchmem makes the
# zero-allocation claim visible in the output.
bench-kernels:
	$(GO) test -run='^$$' -bench='^BenchmarkKernel|^BenchmarkNaive|^BenchmarkPrePR' \
		-benchmem ./internal/linalg/kerneltest ./internal/qoc

# Machine-readable benchmark artifact: the small suite (Table 1
# circuits, estimate mode) as bench/BENCH_small.json. Deterministic
# metrics (latency, fidelity, counts) are byte-stable across machines;
# only compile_time_ns varies.
bench-json:
	$(GO) run ./cmd/epoc-bench -suite small -json bench

# Perf regression gate: re-run the small suite and compare against the
# committed seed baseline. Non-zero exit on any gated-metric
# regression. epoc-bench is the authoritative gate; epoc-stats then
# renders the full baseline diff into the job log (and double-gates on
# the headline metrics), so a failing run shows *what* moved, not just
# that something did. Refresh the baseline with:
#   go run ./cmd/epoc-bench -suite small -json bench/baseline
bench-gate:
	rm -rf $(CURDIR)/.bench-gate
	gate=0; \
	$(GO) run ./cmd/epoc-bench -suite small -json $(CURDIR)/.bench-gate \
		-baseline bench/baseline/BENCH_small.json || gate=$$?; \
	$(GO) run ./cmd/epoc-stats -fail-on 'latency_ns=0.01%,fidelity=0.0001,qoc_runs=0' \
		bench/baseline/BENCH_small.json $(CURDIR)/.bench-gate/BENCH_small.json || gate=$$?; \
	exit $$gate

# Store-warm gate: run the small suite in full-GRAPE mode twice over
# one persistent store. Run 1 pays for GRAPE and populates the store;
# run 2 must serve every pulse from disk (qoc_runs = 0, near-zero QOC
# time) and is gated against the committed warm baseline. Refresh with:
#   rm -rf /tmp/epoc-store && \
#   go run ./cmd/epoc-bench -suite small -store /tmp/epoc-store && \
#   go run ./cmd/epoc-bench -suite small -store /tmp/epoc-store -json bench/baseline
store-warm-gate:
	rm -rf $(CURDIR)/.store-warm
	$(GO) run ./cmd/epoc-bench -suite small -store $(CURDIR)/.store-warm
	$(GO) run ./cmd/epoc-bench -suite small -store $(CURDIR)/.store-warm \
		-baseline bench/baseline/BENCH_small_warm.json

# Native Go fuzzing of the QASM parser, the store record codec and the
# linalg kernel layer (bounded; CI runs the same targets on every push).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=30s ./internal/qasm
	$(GO) test -run='^$$' -fuzz=FuzzStoreDecode -fuzztime=30s ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzKernelMatmul -fuzztime=30s ./internal/linalg/kerneltest
	$(GO) test -run='^$$' -fuzz=FuzzKernelExpm -fuzztime=30s ./internal/linalg/kerneltest

# Run the compile service locally (see SERVING.md for the API).
serve:
	$(GO) run ./cmd/epoc-serve -addr localhost:8080

# End-to-end smoke test of the running daemon: cold + warm compile,
# event stream, observability endpoints, graceful SIGTERM drain.
smoke-serve:
	sh scripts/smoke_serve.sh

# Telemetry smoke test (DESIGN.md §15): full-mode compile against a
# live daemon, strict-parse the /metrics scrape (epoc-stats
# -promcheck) including stage histograms and store counters, check
# access-log ↔ trace-header correlation, and run the epoc-stats
# snapshot diff gate.
metrics-smoke:
	sh scripts/metrics_smoke.sh

ci: build vet lint lint-fixtures race test-leak smoke-serve metrics-smoke
